// ShardedKeyspace: the multi-object layer — millions of logical keys hashed
// across many independent tree instances (src/txn/cluster.hpp), each shard a
// complete replicated system running its own ReplicaControlProtocol, plus an
// optional LIGHT shard (a mostly-read tree, read cost 1) that hot keys are
// remapped onto at quiescent batch boundaries.
//
// Topology
//   cluster 0 .. S-1   home shards: HashShardRouter spreads keys uniformly
//   cluster S          light shard (only when a light_protocol is supplied)
//
// Every transaction is single-shard: a key's operations execute on exactly
// one cluster at a time (the routing invariant the key-aware checker in
// keyspace/multi_history.hpp verifies). Scans are decomposed into chained
// per-key read transactions — non-atomic across segments, like YCSB-E on a
// range-unaware hash-sharded store.
//
// Shards do NOT share a simulated clock: each cluster owns its scheduler.
// The runner (run_keyspace_workload) interleaves them with a fixed
// round-robin pumping policy, so a (seed, options) pair yields one
// byte-reproducible execution regardless of the host or --jobs fan-out —
// the same determinism contract the rest of the repo holds (see
// src/driver/pool.hpp).
//
// Hot-key remap protocol (keyspace/hotness.hpp has the state machine):
//   1. the runner reaches a batch boundary and settles every cluster;
//   2. promote: the key's latest committed (value, timestamp) is copied
//      out-of-band onto EVERY light-shard replica (the same transfer
//      service Cluster::reconfigure models), then the router override
//      activates — subsequent ops on the key route to the light shard;
//   3. restore: symmetric transfer back onto every home replica.
// Timestamps ride along unchanged, so the key's version chain stays
// monotone across the move and the merged serializability check holds.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "keyspace/generator.hpp"
#include "keyspace/hotness.hpp"
#include "keyspace/shard_map.hpp"
#include "txn/cluster.hpp"
#include "util/stats.hpp"

namespace atrcp {

/// Builds one protocol instance per call; invoked once per home shard (and
/// once for the light shard from KeyspaceOptions::light_protocol). Shards
/// may use different universe sizes — clusters are fully independent.
using ProtocolFactory =
    std::function<std::unique_ptr<ReplicaControlProtocol>()>;

struct KeyspaceOptions {
  std::size_t shards = 4;
  ProtocolFactory shard_protocol;  ///< required
  /// When set, an extra light shard is built and hot-key remapping becomes
  /// available; null disables remapping entirely.
  ProtocolFactory light_protocol;
  /// Global clients; client c owns coordinator c on EVERY cluster and has
  /// at most one transaction in flight across the whole keyspace.
  std::size_t clients = 4;
  std::uint64_t seed = 1;
  LinkParams link{};
  CoordinatorOptions coordinator{};
  bool record_history = false;
  std::size_t event_bus_capacity = 0;
  /// Hotness tracking mode: exact map (default — the digest-pinned
  /// behaviour) or Count-Min + Space-Saving sketch for millions of keys.
  HotnessOptions hotness{};
  /// Non-owning router override (fault injection: BrokenCrossShardRouter).
  /// Null = an owned HashShardRouter over `shards`. Must outlive the
  /// keyspace. The router only sees home shards; remapped keys divert to
  /// the light shard before the router is consulted.
  ShardRouter* router = nullptr;
};

class ShardedKeyspace {
 public:
  explicit ShardedKeyspace(KeyspaceOptions options);

  std::size_t shard_count() const noexcept { return options_.shards; }
  bool has_light() const noexcept { return light_index_ != kNoLight; }
  /// Index of the light cluster; only valid when has_light().
  std::size_t light_index() const noexcept { return light_index_; }
  /// Home shards plus the light shard, when present.
  std::size_t cluster_count() const noexcept { return clusters_.size(); }

  Cluster& cluster(std::size_t index) { return *clusters_.at(index); }
  const Cluster& cluster(std::size_t index) const {
    return *clusters_.at(index);
  }

  /// Cluster index serving `key` right now: the light shard while the key
  /// is remapped, otherwise whatever the router says.
  std::size_t route(Key key, bool is_write);

  HotnessTracker& hotness() noexcept { return hotness_; }
  const HotKeyRemapManager& remap() const noexcept { return remap_; }

  /// Runs every cluster's scheduler dry, to a global fixpoint (a callback
  /// on one cluster may have enqueued work on another).
  void settle_all();

  /// True when no coordinator on any cluster has a transaction in flight.
  bool all_idle() const;

  /// Moves `key` onto the light shard (state transfer + state machine
  /// transition). Requires has_light() and a quiescent keyspace; throws
  /// std::logic_error otherwise or if the key is already remapped.
  void promote_key(Key key, std::uint64_t batch);

  /// Moves `key` back onto its home shard. Requires quiescence and that
  /// the key is currently remapped.
  void restore_key(Key key, std::uint64_t batch);

  /// Per-cluster history recorders (index-aligned with cluster(i)) — the
  /// input to check_keyspace_histories. Meaningful only when
  /// KeyspaceOptions::record_history was set.
  std::vector<const HistoryRecorder*> histories() const;

 private:
  std::size_t home_shard(Key key, bool is_write);
  /// Installs `key`'s latest committed (value, timestamp) found on any of
  /// `from`'s replicas onto every one of `to`'s replicas. No-op when the
  /// key was never written.
  void transfer_key(Cluster& from, Cluster& to, Key key);

  static constexpr std::size_t kNoLight = static_cast<std::size_t>(-1);

  KeyspaceOptions options_;
  std::unique_ptr<HashShardRouter> owned_router_;
  ShardRouter* router_;  ///< owned_router_ or the override; never null
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::size_t light_index_ = kNoLight;
  HotnessTracker hotness_;
  HotKeyRemapManager remap_;
};

// -- the closed-loop multi-shard runner --------------------------------------

struct KeyspaceRunOptions {
  KeyspaceMix mix;
  std::uint64_t records = 1024;
  std::size_t ops_per_client = 100;
  std::uint64_t workload_seed = 42;
  /// Keyspace ops per client per batch; 0 = everything in one batch.
  /// Batch boundaries are where the remap policy runs.
  std::size_t batch_size = 0;

  // Remap policy (effective only when the keyspace has a light shard).
  /// Consider the top-k hottest keys of the finished batch's window.
  std::size_t promote_top_k = 0;  ///< 0 disables promotion
  /// A candidate must have at least this many window accesses.
  std::uint64_t promote_min_count = 8;
  /// Restore a remapped key whose window count fell below this.
  std::uint64_t restore_below = 2;
  /// Cap on simultaneously remapped keys (light-tree capacity model).
  std::size_t max_remapped = 4;
};

struct KeyspaceStats {
  std::uint64_t issued = 0;     ///< keyspace ops issued (scan = 1 op)
  std::uint64_t txns = 0;       ///< single-shard transactions executed
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t blocked = 0;
  /// Indexed by KeyspaceOp::Kind.
  std::array<std::uint64_t, 5> ops_by_kind{};
  /// Transactions issued per cluster index (home shards, then light).
  std::vector<std::uint64_t> txns_per_cluster;
  /// Per-transaction latency in shard-local simulated microseconds.
  SampleSummary latency_us;
  std::size_t batches = 0;
  std::uint64_t promoted = 0;
  std::uint64_t restored = 0;

  /// One-line summary for logs and bench payloads (deterministic).
  std::string line() const;
};

/// Drives `generator.clients()` closed-loop clients over the keyspace:
/// issue -> route -> run on the owning cluster -> next, with all cluster
/// schedulers pumped round-robin. At every batch boundary the keyspace is
/// settled and the hot-key policy runs. Deterministic in (keyspace seed,
/// run options). The generator's client count must equal the keyspace's.
KeyspaceStats run_keyspace_workload(ShardedKeyspace& keyspace,
                                    const KeyspaceRunOptions& options);

}  // namespace atrcp
