#include "keyspace/shard_map.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace atrcp {

ShardRouter::ShardRouter(std::size_t shards) : shards_(shards) {}

HashShardRouter::HashShardRouter(std::size_t shards) : ShardRouter(shards) {
  if (shards == 0) {
    throw std::invalid_argument("HashShardRouter: shards must be > 0");
  }
}

ShardId HashShardRouter::shard_of(Key key, std::size_t shards) noexcept {
  // One SplitMix64 round decorrelates the low bits from sequential key
  // assignment; the modulo then spreads keys uniformly for any shard count.
  return static_cast<ShardId>(SplitMix64(key).next() % shards);
}

ShardId HashShardRouter::route(Key key, bool /*is_write*/) {
  return shard_of(key, shards_);
}

BrokenCrossShardRouter::BrokenCrossShardRouter(std::size_t shards)
    : ShardRouter(shards) {
  if (shards < 2) {
    throw std::invalid_argument(
        "BrokenCrossShardRouter: needs >= 2 shards to split a key");
  }
}

ShardId BrokenCrossShardRouter::route(Key key, bool is_write) {
  const ShardId home = HashShardRouter::shard_of(key, shards_);
  if (!is_write) return home;
  const std::uint64_t nth = write_count_[key]++;
  if (nth % 2 == 0) return home;
  return static_cast<ShardId>((home + 1) % shards_);
}

}  // namespace atrcp
