#include "keyspace/multi_history.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace atrcp {

MergedKeyspaceHistory merge_keyspace_histories(
    const std::vector<const HistoryRecorder*>& shards,
    const std::vector<Key>& remap_allowed) {
  ATRCP_CHECK(std::is_sorted(remap_allowed.begin(), remap_allowed.end()));
  MergedKeyspaceHistory out;

  // Key -> (first shard seen, label of first txn there), plus the first
  // conflicting (shard, label) when a second shard shows up — the minimized
  // routing counterexample.
  struct KeyHome {
    std::size_t shard = 0;
    std::string label;
  };
  std::map<Key, KeyHome> homes;
  std::map<Key, std::string> violations;  // key -> counterexample (first wins)

  for (std::size_t s = 0; s < shards.size(); ++s) {
    ATRCP_CHECK(shards[s] != nullptr);
    for (const HistoryTxn& txn : shards[s]->txns()) {
      HistoryTxn copy = txn;
      const std::uint64_t tag = (static_cast<std::uint64_t>(s) + 1)
                                << kShardIdShift;
      ATRCP_CHECK(txn.txn_id < (1ull << kShardIdShift));
      copy.txn_id = tag | txn.txn_id;
      copy.invoke_seq = tag | txn.invoke_seq;
      copy.complete_seq = tag | txn.complete_seq;
      for (const HistoryOp& op : txn.ops) {
        const auto [it, fresh] =
            homes.try_emplace(op.key, KeyHome{s, txn.label()});
        if (!fresh && it->second.shard != s &&
            !std::binary_search(remap_allowed.begin(), remap_allowed.end(),
                                op.key) &&
            violations.find(op.key) == violations.end()) {
          violations[op.key] =
              "routing violation: key " + std::to_string(op.key) +
              " executed on shard " + std::to_string(it->second.shard) +
              " (txn " + it->second.label + ") and shard " +
              std::to_string(s) + " (txn " + txn.label() + ")";
        }
      }
      out.txns.push_back(std::move(copy));
    }
  }
  for (auto& [key, text] : violations) {
    out.routing_violations.push_back(std::move(text));
  }
  return out;
}

KeyspaceCheckResult check_keyspace_histories(
    const std::vector<const HistoryRecorder*>& shards,
    const std::vector<Key>& remap_allowed, std::size_t max_lin_ops) {
  KeyspaceCheckResult out;

  const MergedKeyspaceHistory merged =
      merge_keyspace_histories(shards, remap_allowed);
  if (!merged.routing_ok()) {
    out.ok = false;
    for (const std::string& violation : merged.routing_violations) {
      out.report += violation + "\n";
    }
  }

  // Global graph/integrity analysis over the merged history. Version
  // chains are clock-free, so independent shard clocks are harmless here.
  SerializabilityChecker merged_checker(merged.txns);
  const CheckResult serial = merged_checker.check();
  if (!serial.ok) {
    out.ok = false;
    out.report += serial.report;
  }

  // Real-time (linearizability) analysis must stay within one simulation
  // clock: run it per shard. Remapped keys are excluded — their values
  // enter a shard out-of-band (the transfer installs a timestamp no local
  // write produced), so the register-semantics check cannot see the full
  // write set; the merged clock-free graph analysis above still covers
  // them end to end.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    SerializabilityChecker shard_checker(shards[s]->txns());
    for (const Key key : shard_checker.keys()) {
      if (std::binary_search(remap_allowed.begin(), remap_allowed.end(),
                             key)) {
        ++out.lin_keys_skipped;
        continue;
      }
      const LinResult lin =
          shard_checker.check_key_linearizable(key, max_lin_ops);
      if (lin.skipped) {
        ++out.lin_keys_skipped;
        continue;
      }
      ++out.lin_keys_checked;
      if (!lin.ok) {
        out.ok = false;
        out.report += "shard " + std::to_string(s) + ": " + lin.report;
      }
    }
  }
  return out;
}

}  // namespace atrcp
