// Per-key hotness tracking and the hot-key remap state machine.
//
// Under Zipfian skew a handful of keys dominate traffic; the keyspace layer
// tracks per-key access counts over rolling windows and, at quiescent batch
// boundaries, remaps the hottest keys onto a LIGHTER quorum configuration —
// a dedicated mostly-read tree whose singleton read quorums spread load —
// then restores them once they cool. Remapping is modelled as EXPLICIT
// state transitions (the memec degraded/remapped-mode pattern):
//
//     kNormal ──promote──▶ kRemapped ──restore──▶ kRestored
//        ▲                                            │
//        └────────────────(promote again)◀────────────┘
//
// Every transition is recorded in an append-only log with the batch index
// it happened at; the log is both the observability record (bench output)
// and the key-aware checker's allow-list (a key whose history spans two
// shards is a routing violation UNLESS a transition moved it).
//
// Thread-safety: owned by one ShardedKeyspace, single-threaded like the
// simulation itself; the parallel driver keeps whole keyspaces per worker.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "replica/store.hpp"

namespace atrcp {

/// Rolling-window access counter. record() tallies into the current
/// window; roll() starts a fresh window (the previous counts are what a
/// batch-boundary policy inspects). Exact counts, not a sketch — the
/// simulation's key universes make exactness affordable and keep every
/// report deterministic.
class HotnessTracker {
 public:
  void record(Key key) {
    ++window_[key];
    ++total_;
  }

  /// Accesses of `key` in the current window.
  std::uint64_t count(Key key) const;

  /// All accesses recorded in the current window.
  std::uint64_t window_total() const noexcept { return total_; }

  /// Accesses recorded over the tracker's whole lifetime.
  std::uint64_t lifetime_total() const noexcept {
    return lifetime_ + total_;
  }

  /// The k hottest keys of the current window, count descending, key
  /// ascending among equals — a deterministic order for reports and for
  /// the remap policy.
  std::vector<std::pair<Key, std::uint64_t>> top(std::size_t k) const;

  /// Starts a fresh window.
  void roll();

 private:
  std::unordered_map<Key, std::uint64_t> window_;
  std::uint64_t total_ = 0;
  std::uint64_t lifetime_ = 0;
};

/// The three states of a key with respect to quorum remapping.
enum class HotKeyState : std::uint8_t {
  kNormal = 0,    ///< served by its hash-routed home shard (never moved)
  kRemapped = 1,  ///< served by the light (mostly-read) shard
  kRestored = 2,  ///< back home after cooling down; re-promotable
};

/// "normal" / "remapped" / "restored".
std::string to_string(HotKeyState state);

/// One edge of the state machine, as it happened.
struct RemapTransition {
  Key key = 0;
  HotKeyState from = HotKeyState::kNormal;
  HotKeyState to = HotKeyState::kRemapped;
  std::uint64_t batch = 0;  ///< quiescent boundary the transition ran at

  std::string to_string() const;
};

class HotKeyRemapManager {
 public:
  HotKeyState state(Key key) const;
  bool is_remapped(Key key) const {
    return state(key) == HotKeyState::kRemapped;
  }

  /// kNormal/kRestored -> kRemapped. Throws std::logic_error if the key is
  /// already remapped — the state machine has no self-loop.
  void promote(Key key, std::uint64_t batch);

  /// kRemapped -> kRestored. Throws std::logic_error unless remapped.
  void restore(Key key, std::uint64_t batch);

  /// Currently remapped keys, ascending.
  std::vector<Key> remapped_keys() const;
  std::size_t remapped_count() const noexcept { return remapped_; }

  /// Keys that were EVER remapped (ascending) — the checker's allow-list
  /// for histories legitimately spanning two shards.
  std::vector<Key> ever_remapped_keys() const;

  /// Append-only transition log in execution order.
  const std::vector<RemapTransition>& log() const noexcept { return log_; }

 private:
  std::unordered_map<Key, HotKeyState> states_;
  std::vector<RemapTransition> log_;
  std::size_t remapped_ = 0;
};

}  // namespace atrcp
