// Per-key hotness tracking and the hot-key remap state machine.
//
// Under Zipfian skew a handful of keys dominate traffic; the keyspace layer
// tracks per-key access counts over rolling windows and, at quiescent batch
// boundaries, remaps the hottest keys onto a LIGHTER quorum configuration —
// a dedicated mostly-read tree whose singleton read quorums spread load —
// then restores them once they cool. Remapping is modelled as EXPLICIT
// state transitions (the memec degraded/remapped-mode pattern):
//
//     kNormal ──promote──▶ kRemapped ──restore──▶ kRestored
//        ▲                                            │
//        └────────────────(promote again)◀────────────┘
//
// Every transition is recorded in an append-only log with the batch index
// it happened at; the log is both the observability record (bench output)
// and the key-aware checker's allow-list (a key whose history spans two
// shards is a routing violation UNLESS a transition moved it).
//
// Thread-safety: owned by one ShardedKeyspace, single-threaded like the
// simulation itself; the parallel driver keeps whole keyspaces per worker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/freq_sketch.hpp"
#include "replica/store.hpp"

namespace atrcp {

/// How HotnessTracker counts key accesses.
enum class HotnessMode : std::uint8_t {
  /// Exact per-key map — O(distinct keys) memory. The default; byte-for-
  /// byte the tracker the keyspace layer always had.
  kExact = 0,
  /// Count-Min + Space-Saving sketch (obs/freq_sketch.hpp) — memory
  /// independent of the key universe; counts become guaranteed one-sided
  /// bounds. Unlocks millions-of-keys runs.
  kSketch = 1,
};

struct HotnessOptions {
  HotnessMode mode = HotnessMode::kExact;
  /// In sketch mode, ALSO maintain the exact map as a cross-check oracle
  /// (exact_count / exact_top stay meaningful) — for accuracy tests and
  /// the msketch bench; costs the exact map's memory again.
  bool cross_check = false;
  FreqSketchOptions sketch{};
};

/// Rolling-window access counter. record() tallies into the current
/// window; roll() starts a fresh window (the previous counts are what a
/// batch-boundary policy inspects). Exact by default; in sketch mode the
/// counts come from a Count-Min + Space-Saving sketch whose upper/lower
/// bounds (count_upper/count_lower) the remap policy consumes — in exact
/// mode both bounds collapse to the exact count, so policy code written
/// against the bounds behaves identically under either mode. Either way
/// every report is deterministic: the sketch hashes with fixed seeds and
/// consumes no randomness.
class HotnessTracker {
 public:
  HotnessTracker() = default;
  explicit HotnessTracker(const HotnessOptions& options);

  void record(Key key) {
    ++total_;
    if (sketch_) {
      sketch_->record(key);
      if (!cross_check_) return;
    }
    ++window_[key];
  }

  HotnessMode mode() const noexcept {
    return sketch_ ? HotnessMode::kSketch : HotnessMode::kExact;
  }

  /// Accesses of `key` in the current window. Exact in exact mode; the
  /// tightest upper bound in sketch mode.
  std::uint64_t count(Key key) const;

  /// Guaranteed lower bound on the window count (== count in exact mode).
  std::uint64_t count_lower(Key key) const;

  /// Guaranteed upper bound on the window count (== count in exact mode).
  std::uint64_t count_upper(Key key) const { return count(key); }

  /// All accesses recorded in the current window.
  std::uint64_t window_total() const noexcept { return total_; }

  /// Accesses recorded over the tracker's whole lifetime.
  std::uint64_t lifetime_total() const noexcept {
    return lifetime_ + total_;
  }

  /// The k hottest keys of the current window, count descending, key
  /// ascending among equals — a deterministic order for reports and for
  /// the remap policy. Sketch mode reports the monitored set's count
  /// upper bounds.
  std::vector<std::pair<Key, std::uint64_t>> top(std::size_t k) const;

  /// Starts a fresh window.
  void roll();

  /// The sketch, or nullptr in exact mode.
  const FreqSketch* sketch() const noexcept { return sketch_.get(); }

  /// Oracle window count — meaningful in exact mode or with cross_check.
  std::uint64_t exact_count(Key key) const;
  /// Oracle top-k over the exact map (same ordering as top()).
  std::vector<std::pair<Key, std::uint64_t>> exact_top(std::size_t k) const;
  bool has_oracle() const noexcept { return !sketch_ || cross_check_; }

 private:
  std::unordered_map<Key, std::uint64_t> window_;
  std::unique_ptr<FreqSketch> sketch_;  ///< null in exact mode
  bool cross_check_ = false;
  std::uint64_t total_ = 0;
  std::uint64_t lifetime_ = 0;
};

/// The three states of a key with respect to quorum remapping.
enum class HotKeyState : std::uint8_t {
  kNormal = 0,    ///< served by its hash-routed home shard (never moved)
  kRemapped = 1,  ///< served by the light (mostly-read) shard
  kRestored = 2,  ///< back home after cooling down; re-promotable
};

/// "normal" / "remapped" / "restored".
std::string to_string(HotKeyState state);

/// One edge of the state machine, as it happened.
struct RemapTransition {
  Key key = 0;
  HotKeyState from = HotKeyState::kNormal;
  HotKeyState to = HotKeyState::kRemapped;
  std::uint64_t batch = 0;  ///< quiescent boundary the transition ran at

  std::string to_string() const;
};

class HotKeyRemapManager {
 public:
  HotKeyState state(Key key) const;
  bool is_remapped(Key key) const {
    return state(key) == HotKeyState::kRemapped;
  }

  /// kNormal/kRestored -> kRemapped. Throws std::logic_error if the key is
  /// already remapped — the state machine has no self-loop.
  void promote(Key key, std::uint64_t batch);

  /// kRemapped -> kRestored. Throws std::logic_error unless remapped.
  void restore(Key key, std::uint64_t batch);

  /// Currently remapped keys, ascending.
  std::vector<Key> remapped_keys() const;
  std::size_t remapped_count() const noexcept { return remapped_; }

  /// Keys that were EVER remapped (ascending) — the checker's allow-list
  /// for histories legitimately spanning two shards.
  std::vector<Key> ever_remapped_keys() const;

  /// Append-only transition log in execution order.
  const std::vector<RemapTransition>& log() const noexcept { return log_; }

 private:
  std::unordered_map<Key, HotKeyState> states_;
  std::vector<RemapTransition> log_;
  std::size_t remapped_ = 0;
};

}  // namespace atrcp
