// Key-aware history merging across shards — how the serializability
// checker (src/check/serializability.hpp) becomes multi-tree.
//
// Each shard is an independent Cluster with its own HistoryRecorder; keys
// are disjoint across shards (a key lives on exactly one tree at a time),
// so the union of the shard histories is itself a valid concurrent history
// the unmodified SerializabilityChecker can analyze: conflicts only exist
// within a key, and a key's version chain stays inside one shard — except
// across an explicit hot-key remap, whose out-of-band state transfer
// preserves timestamps, so the merged per-key chain remains version-
// monotone across the move.
//
// The merge therefore does three things:
//  1. Re-identify: shard-qualify transaction ids (and invoke/complete
//     sequence numbers) so ids from different shards cannot collide.
//  2. Verify the ROUTING INVARIANT: every key's operations must all have
//     executed on one shard, unless a remap transition moved the key. A
//     violation is reported as a minimized counterexample (the key and the
//     first transaction that touched it on each shard) — this is what
//     catches the BrokenCrossShardRouter directly, before the graph
//     analysis even runs.
//  3. Hand the merged transactions to SerializabilityChecker for the full
//     integrity + dependency-graph analysis.
//
// Real-time caveat: shard simulation clocks are independent, so the
// merged history supports the checker's version/graph analysis (which is
// clock-free) but NOT cross-shard real-time reasoning — per-key
// linearizability must be checked per shard (keyspace_check does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/serializability.hpp"

namespace atrcp {

struct MergedKeyspaceHistory {
  /// All shards' finished transactions, ids shard-qualified, ordered by
  /// (shard, completion) — a deterministic order for the checker's
  /// tie-breaks.
  std::vector<HistoryTxn> txns;
  /// Routing-invariant violations, one minimized counterexample per key
  /// (deterministic order). Empty for every correct router.
  std::vector<std::string> routing_violations;

  bool routing_ok() const noexcept { return routing_violations.empty(); }
};

/// Offset separating shard id from per-shard transaction ids in merged
/// ids: merged_id = (shard + 1) << kShardIdShift | local_id. Large enough
/// that no simulated run's local ids collide with the tag.
inline constexpr unsigned kShardIdShift = 40;

/// Merges per-shard histories and checks the routing invariant.
/// `remap_allowed` is the ascending list of keys that legitimately moved
/// between shards (HotKeyRemapManager::ever_remapped_keys()).
MergedKeyspaceHistory merge_keyspace_histories(
    const std::vector<const HistoryRecorder*>& shards,
    const std::vector<Key>& remap_allowed);

/// Result of the full key-aware check of one multi-shard run.
struct KeyspaceCheckResult {
  bool ok = true;
  /// Routing violations + merged-history checker report; empty when ok.
  std::string report;
  std::size_t lin_keys_checked = 0;
  std::size_t lin_keys_skipped = 0;
};

/// The whole pipeline: merge + routing invariant + merged
/// SerializabilityChecker::check() + per-(shard, key) Wing–Gong
/// linearizability (bounded by max_lin_ops; larger sub-histories are
/// counted as skipped).
KeyspaceCheckResult check_keyspace_histories(
    const std::vector<const HistoryRecorder*>& shards,
    const std::vector<Key>& remap_allowed, std::size_t max_lin_ops = 48);

}  // namespace atrcp
