#include "keyspace/generator.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

std::string KeyspaceOp::to_string() const {
  std::string out;
  switch (kind) {
    case Kind::kRead: out = "read"; break;
    case Kind::kUpdate: out = "update"; break;
    case Kind::kReadModifyWrite: out = "rmw"; break;
    case Kind::kScan: out = "scan"; break;
    case Kind::kInsert: out = "insert"; break;
  }
  out += " k=" + std::to_string(key);
  if (kind == Kind::kScan) out += " len=" + std::to_string(scan_len);
  return out;
}

std::vector<KeyspaceMix> standard_mixes() {
  std::vector<KeyspaceMix> mixes;
  mixes.push_back({.name = "ycsb_a",
                   .distribution = KeyDistribution::kZipfian,
                   .read_p = 0.5,
                   .update_p = 0.5});
  mixes.push_back({.name = "ycsb_b",
                   .distribution = KeyDistribution::kZipfian,
                   .read_p = 0.95,
                   .update_p = 0.05});
  mixes.push_back({.name = "ycsb_c",
                   .distribution = KeyDistribution::kZipfian,
                   .read_p = 1.0,
                   .update_p = 0.0});
  mixes.push_back({.name = "ycsb_d",
                   .distribution = KeyDistribution::kLatest,
                   .scramble = false,  // recency IS the key order
                   .read_p = 0.90,
                   .update_p = 0.05,
                   .insert_p = 0.05});
  mixes.push_back({.name = "ycsb_e",
                   .distribution = KeyDistribution::kZipfian,
                   .read_p = 0.0,
                   .update_p = 0.05,
                   .scan_p = 0.95,
                   .max_scan_len = 4});
  mixes.push_back({.name = "uniform_50_50",
                   .distribution = KeyDistribution::kUniform,
                   .read_p = 0.5,
                   .update_p = 0.5});
  return mixes;
}

// -- YcsbZipfian -------------------------------------------------------------

namespace {

/// zeta(lo..hi-1, theta) partial sum: Σ_{i=lo}^{hi-1} 1/(i+1)^θ.
double zeta_range(std::uint64_t lo, std::uint64_t hi, double theta) {
  double sum = 0;
  for (std::uint64_t i = lo; i < hi; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

}  // namespace

YcsbZipfian::YcsbZipfian(std::uint64_t items, double theta)
    : items_(items), theta_(theta) {
  if (items == 0) throw std::invalid_argument("YcsbZipfian: items must be > 0");
  if (!(theta > 0.0) || !(theta < 1.0)) {
    throw std::invalid_argument("YcsbZipfian: theta must be in (0, 1)");
  }
  zeta2_ = zeta_range(0, 2, theta_);
  zeta_n_ = zeta_range(0, items_, theta_);
  refresh();
}

void YcsbZipfian::refresh() noexcept {
  alpha_ = 1.0 / (1.0 - theta_);
  const double n = static_cast<double>(items_);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta_)) / (1.0 - zeta2_ / zeta_n_);
}

void YcsbZipfian::grow(std::uint64_t new_items) {
  ATRCP_CHECK(new_items >= items_);
  if (new_items == items_) return;
  zeta_n_ += zeta_range(items_, new_items, theta_);
  items_ = new_items;
  refresh();
}

std::uint64_t YcsbZipfian::next(Rng& rng) const {
  // Gray et al., "Quickly generating billion-record synthetic databases":
  // one uniform draw mapped through the closed-form inverse.
  const double u = rng.uniform();
  const double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(items_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= items_ ? items_ - 1 : rank;
}

double YcsbZipfian::mass(std::uint64_t rank) const {
  ATRCP_CHECK(rank < items_);
  return 1.0 / std::pow(static_cast<double>(rank + 1), theta_) / zeta_n_;
}

// -- KeyspaceWorkloadGenerator -----------------------------------------------

KeyspaceWorkloadGenerator::KeyspaceWorkloadGenerator(
    const KeyspaceWorkloadOptions& options)
    : options_(options),
      records_(options.records),
      zipf_(options.records == 0 ? 1 : options.records, options.mix.zipf_theta) {
  if (options.records == 0) {
    throw std::invalid_argument("KeyspaceWorkloadGenerator: records == 0");
  }
  if (options.clients == 0) {
    throw std::invalid_argument("KeyspaceWorkloadGenerator: clients == 0");
  }
  const KeyspaceMix& mix = options.mix;
  const double proportions[] = {mix.read_p, mix.update_p, mix.rmw_p,
                                mix.scan_p, mix.insert_p};
  double sum = 0;
  for (const double p : proportions) {
    if (p < 0) {
      throw std::invalid_argument(
          "KeyspaceWorkloadGenerator: negative mix proportion");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument(
        "KeyspaceWorkloadGenerator: mix proportions must sum to 1");
  }
  if (mix.max_scan_len == 0) {
    throw std::invalid_argument("KeyspaceWorkloadGenerator: max_scan_len == 0");
  }
  // One independent stream per client, expanded from the seed the same way
  // the explorer expands its concern streams: adding a client never
  // perturbs the streams of existing clients.
  SplitMix64 mixstream(options.seed);
  rngs_.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    rngs_.emplace_back(mixstream.next());
  }
}

Key KeyspaceWorkloadGenerator::draw_key(Rng& rng) {
  switch (options_.mix.distribution) {
    case KeyDistribution::kUniform:
      return static_cast<Key>(rng.below(records_));
    case KeyDistribution::kZipfian: {
      const std::uint64_t rank = zipf_.next(rng);
      if (!options_.mix.scramble) return static_cast<Key>(rank);
      return static_cast<Key>(SplitMix64(rank).next() % records_);
    }
    case KeyDistribution::kLatest: {
      // Rank 0 = newest record; never scrambled (recency IS the order).
      const std::uint64_t rank = zipf_.next(rng);
      return static_cast<Key>(records_ - 1 - rank);
    }
  }
  return 0;  // unreachable
}

KeyspaceOp KeyspaceWorkloadGenerator::next(std::size_t client) {
  ATRCP_CHECK(client < rngs_.size());
  Rng& rng = rngs_[client];
  const KeyspaceMix& mix = options_.mix;
  const double roll = rng.uniform();
  KeyspaceOp op;
  double edge = mix.read_p;
  if (roll < edge) {
    op.kind = KeyspaceOp::Kind::kRead;
    op.key = draw_key(rng);
    return op;
  }
  edge += mix.update_p;
  if (roll < edge) {
    op.kind = KeyspaceOp::Kind::kUpdate;
    op.key = draw_key(rng);
    return op;
  }
  edge += mix.rmw_p;
  if (roll < edge) {
    op.kind = KeyspaceOp::Kind::kReadModifyWrite;
    op.key = draw_key(rng);
    return op;
  }
  edge += mix.scan_p;
  if (roll < edge) {
    op.kind = KeyspaceOp::Kind::kScan;
    op.key = draw_key(rng);
    op.scan_len =
        1 + static_cast<std::uint32_t>(rng.below(mix.max_scan_len));
    return op;
  }
  // Insert: allocate the next record id (shared counter, issue order) and
  // extend the zipfian range so latest draws can reach it.
  op.kind = KeyspaceOp::Kind::kInsert;
  op.key = static_cast<Key>(records_);
  ++records_;
  zipf_.grow(records_);
  return op;
}

}  // namespace atrcp
