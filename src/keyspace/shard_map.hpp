// Key -> shard routing for the sharded multi-object keyspace.
//
// The keyspace layer (src/keyspace/keyspace.hpp) hashes millions of logical
// keys across many independent tree instances. A router decides which shard
// serves an access; the contract every correct router must uphold is that
// ALL accesses of a key — reads and writes alike — land on the same shard
// while the key is not remapped, because quorum intersection (and therefore
// one-copy serializability) only holds WITHIN one tree instance. Two
// implementations live here:
//
//  * HashShardRouter — SplitMix64-mixed stationary hashing, the production
//    router. Deterministic, O(1), spreads a scrambled-Zipfian head evenly
//    in expectation (per-shard imbalance under skew is exactly what
//    bench_keyspace measures).
//  * BrokenCrossShardRouter — a deliberately WRONG router, the keyspace
//    analogue of BrokenIntersectionProtocol (src/check/broken.hpp): every
//    other write of a key is routed one shard to the right, so a key's
//    version chain is split across two trees whose quorums never intersect.
//    The merged key-aware checker must flag this (duplicate versions /
//    lost-update cycles, plus the routing-invariant violation itself)
//    within a handful of explorer seeds. Test double — never a baseline.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "replica/store.hpp"

namespace atrcp {

/// Dense shard identifier; a keyspace of S shards uses ids [0, S).
using ShardId = std::uint32_t;

class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual std::string name() const = 0;
  std::size_t shard_count() const noexcept { return shards_; }

  /// The shard that must execute this access. Correct routers ignore
  /// `is_write` (a key has ONE home); the broken test double keys on it.
  /// Non-const: the broken router is stateful (per-key access parity).
  virtual ShardId route(Key key, bool is_write) = 0;

 protected:
  explicit ShardRouter(std::size_t shards);

  std::size_t shards_;
};

/// Stationary SplitMix64 hash routing: shard = mix(key) mod shards.
/// Stable across runs and processes — golden values are pinned in
/// tests/keyspace/shard_map_test.cpp so a silent hash change (which would
/// invalidate every recorded per-shard digest) cannot slip through.
class HashShardRouter final : public ShardRouter {
 public:
  /// Throws std::invalid_argument if shards == 0.
  explicit HashShardRouter(std::size_t shards);

  std::string name() const override { return "hash"; }
  ShardId route(Key key, bool is_write) override;

  /// The routing function itself, usable without an instance (the workload
  /// generator's rejection-free per-shard accounting uses it).
  static ShardId shard_of(Key key, std::size_t shards) noexcept;
};

/// The teeth-test router: reads go home, but every second write of a key is
/// misrouted to (home + 1) % shards. With >= 2 shards a key's writes split
/// across two disjoint trees: concurrent read-modify-writes derive their
/// versions from different chains (lost update), and the two chains install
/// duplicate version numbers the merged checker flags.
class BrokenCrossShardRouter final : public ShardRouter {
 public:
  /// Throws std::invalid_argument if shards < 2 (one shard cannot split).
  explicit BrokenCrossShardRouter(std::size_t shards);

  std::string name() const override { return "broken-cross-shard"; }
  ShardId route(Key key, bool is_write) override;

 private:
  /// Per-key write parity: even writes go home, odd writes go right.
  std::unordered_map<Key, std::uint64_t> write_count_;
};

}  // namespace atrcp
