#include "keyspace/keyspace.hpp"

#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace atrcp {

ShardedKeyspace::ShardedKeyspace(KeyspaceOptions options)
    : options_(std::move(options)), hotness_(options_.hotness) {
  if (options_.shards == 0) {
    throw std::invalid_argument("ShardedKeyspace: shards == 0");
  }
  if (!options_.shard_protocol) {
    throw std::invalid_argument("ShardedKeyspace: shard_protocol is required");
  }
  if (options_.clients == 0) {
    throw std::invalid_argument("ShardedKeyspace: clients == 0");
  }
  if (options_.router) {
    if (options_.router->shard_count() != options_.shards) {
      throw std::invalid_argument(
          "ShardedKeyspace: router shard count mismatch");
    }
    router_ = options_.router;
  } else {
    owned_router_ = std::make_unique<HashShardRouter>(options_.shards);
    router_ = owned_router_.get();
  }

  // Every cluster's seed is forked from one SplitMix64 stream, so cluster i
  // is a pure function of (seed, i): adding the light shard never perturbs
  // the home shards.
  SplitMix64 seeds(options_.seed);
  const auto build = [&](const ProtocolFactory& factory) {
    ClusterOptions cluster_options;
    cluster_options.seed = seeds.next();
    cluster_options.link = options_.link;
    cluster_options.coordinator = options_.coordinator;
    cluster_options.clients = options_.clients;
    cluster_options.record_history = options_.record_history;
    cluster_options.event_bus_capacity = options_.event_bus_capacity;
    return std::make_unique<Cluster>(factory(), cluster_options);
  };
  clusters_.reserve(options_.shards + (options_.light_protocol ? 1 : 0));
  for (std::size_t s = 0; s < options_.shards; ++s) {
    clusters_.push_back(build(options_.shard_protocol));
  }
  if (options_.light_protocol) {
    light_index_ = clusters_.size();
    clusters_.push_back(build(options_.light_protocol));
  }
}

std::size_t ShardedKeyspace::home_shard(Key key, bool is_write) {
  const ShardId shard = router_->route(key, is_write);
  ATRCP_CHECK(shard < options_.shards);
  return shard;
}

std::size_t ShardedKeyspace::route(Key key, bool is_write) {
  if (remap_.is_remapped(key)) return light_index_;
  return home_shard(key, is_write);
}

void ShardedKeyspace::settle_all() {
  // A callback running inside one cluster's settle may enqueue work on
  // another cluster, so iterate to a fixpoint over the executed-event
  // counters.
  for (;;) {
    std::uint64_t before = 0;
    for (const auto& cluster : clusters_) {
      before += cluster->scheduler().executed();
    }
    for (const auto& cluster : clusters_) cluster->settle();
    std::uint64_t after = 0;
    for (const auto& cluster : clusters_) {
      after += cluster->scheduler().executed();
    }
    if (after == before) return;
  }
}

bool ShardedKeyspace::all_idle() const {
  for (const auto& cluster : clusters_) {
    for (std::size_t c = 0; c < cluster->client_count(); ++c) {
      if (const_cast<Cluster&>(*cluster).client(c).in_flight() != 0) {
        return false;
      }
    }
  }
  return true;
}

void ShardedKeyspace::transfer_key(Cluster& from, Cluster& to, Key key) {
  std::optional<VersionedValue> latest;
  for (std::size_t r = 0; r < from.replica_count(); ++r) {
    const auto entry = from.server(r).store().get(key);
    if (entry &&
        (!latest || entry->timestamp.is_newer_than(latest->timestamp))) {
      latest = *entry;
    }
  }
  if (!latest) return;  // never written; nothing to move
  for (std::size_t r = 0; r < to.replica_count(); ++r) {
    to.server(r).store().apply(key, latest->value, latest->timestamp);
  }
}

void ShardedKeyspace::promote_key(Key key, std::uint64_t batch) {
  if (!has_light()) {
    throw std::logic_error("promote_key: keyspace has no light shard");
  }
  settle_all();
  if (!all_idle()) {
    throw std::logic_error("promote_key: transactions still in flight");
  }
  transfer_key(cluster(home_shard(key, false)), cluster(light_index_), key);
  remap_.promote(key, batch);
}

void ShardedKeyspace::restore_key(Key key, std::uint64_t batch) {
  if (!has_light()) {
    throw std::logic_error("restore_key: keyspace has no light shard");
  }
  settle_all();
  if (!all_idle()) {
    throw std::logic_error("restore_key: transactions still in flight");
  }
  if (!remap_.is_remapped(key)) {
    throw std::logic_error("restore_key: key is not remapped");
  }
  transfer_key(cluster(light_index_), cluster(home_shard(key, false)), key);
  remap_.restore(key, batch);
}

std::vector<const HistoryRecorder*> ShardedKeyspace::histories() const {
  std::vector<const HistoryRecorder*> out;
  out.reserve(clusters_.size());
  for (const auto& cluster : clusters_) out.push_back(&cluster->history());
  return out;
}

// -- runner ------------------------------------------------------------------

std::string KeyspaceStats::line() const {
  std::string out = "issued=" + std::to_string(issued) +
                    " txns=" + std::to_string(txns) +
                    " committed=" + std::to_string(committed) +
                    " aborted=" + std::to_string(aborted) +
                    " blocked=" + std::to_string(blocked) +
                    " batches=" + std::to_string(batches) +
                    " promoted=" + std::to_string(promoted) +
                    " restored=" + std::to_string(restored) + " per_cluster=[";
  for (std::size_t i = 0; i < txns_per_cluster.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(txns_per_cluster[i]);
  }
  out += "]";
  return out;
}

namespace {

/// One single-shard transaction of a decomposed keyspace op.
struct SubTxn {
  Key key = 0;
  bool has_write = false;
  std::vector<TxnOp> ops;
};

struct ClientState {
  std::vector<SubTxn> queue;  ///< drained front-to-back via `head`
  std::size_t head = 0;
  bool pending = false;
  std::size_t issued_ops = 0;      ///< keyspace ops over the whole run
  std::size_t issued_in_batch = 0;
  std::uint64_t value_seq = 0;
};

}  // namespace

KeyspaceStats run_keyspace_workload(ShardedKeyspace& keyspace,
                                    const KeyspaceRunOptions& options) {
  const std::size_t clients = keyspace.cluster(0).client_count();
  for (std::size_t i = 0; i < keyspace.cluster_count(); ++i) {
    ATRCP_CHECK(keyspace.cluster(i).client_count() == clients);
  }

  KeyspaceWorkloadOptions generator_options;
  generator_options.mix = options.mix;
  generator_options.records = options.records;
  generator_options.clients = clients;
  generator_options.ops_per_client = options.ops_per_client;
  generator_options.seed = options.workload_seed;
  KeyspaceWorkloadGenerator generator(generator_options);

  KeyspaceStats stats;
  stats.txns_per_cluster.assign(keyspace.cluster_count(), 0);
  std::vector<ClientState> states(clients);

  const std::size_t quota =
      options.batch_size == 0 ? options.ops_per_client : options.batch_size;
  ATRCP_CHECK(quota > 0);
  constexpr std::size_t kPumpChunk = 1024;

  const auto expand = [&](std::size_t c, const KeyspaceOp& op) {
    ClientState& state = states[c];
    const auto value = [&] {
      std::string v = "c";
      v += std::to_string(c);
      v += "#";
      v += std::to_string(state.value_seq++);
      return v;
    };
    switch (op.kind) {
      case KeyspaceOp::Kind::kRead:
        state.queue.push_back({op.key, false, {TxnOp::read(op.key)}});
        break;
      case KeyspaceOp::Kind::kUpdate:
      case KeyspaceOp::Kind::kInsert:
        state.queue.push_back({op.key, true, {TxnOp::write(op.key, value())}});
        break;
      case KeyspaceOp::Kind::kReadModifyWrite:
        state.queue.push_back(
            {op.key, true, {TxnOp::read(op.key), TxnOp::write(op.key, value())}});
        break;
      case KeyspaceOp::Kind::kScan: {
        // Chained per-key read txns, wrapping at the current record count —
        // non-atomic across segments (documented at the top of the header).
        const std::uint64_t records = generator.record_count();
        for (std::uint32_t i = 0; i < op.scan_len; ++i) {
          const Key key = static_cast<Key>((op.key + i) % records);
          state.queue.push_back({key, false, {TxnOp::read(key)}});
        }
        break;
      }
    }
    for (std::size_t i = state.head; i < state.queue.size(); ++i) {
      keyspace.hotness().record(state.queue[i].key);
    }
  };

  const auto all_issued = [&] {
    for (const ClientState& state : states) {
      if (state.issued_ops < options.ops_per_client) return false;
    }
    return true;
  };

  while (!all_issued()) {
    // -- one batch -----------------------------------------------------------
    for (ClientState& state : states) state.issued_in_batch = 0;
    for (;;) {
      bool busy = false;
      bool progressed = false;
      for (std::size_t c = 0; c < clients; ++c) {
        ClientState& state = states[c];
        if (!state.pending && state.head == state.queue.size() &&
            state.issued_in_batch < quota &&
            state.issued_ops < options.ops_per_client) {
          const KeyspaceOp op = generator.next(c);
          ++stats.issued;
          ++stats.ops_by_kind[static_cast<std::size_t>(op.kind)];
          ++state.issued_ops;
          ++state.issued_in_batch;
          expand(c, op);
        }
        if (!state.pending && state.head < state.queue.size()) {
          SubTxn& sub = state.queue[state.head++];
          const std::size_t idx = keyspace.route(sub.key, sub.has_write);
          Cluster& target = keyspace.cluster(idx);
          ++stats.txns;
          ++stats.txns_per_cluster[idx];
          state.pending = true;
          const SimTime issue_time = target.scheduler().now();
          ClientState* state_ptr = &state;
          KeyspaceStats* stats_ptr = &stats;
          Cluster* target_ptr = &target;
          target.client(c).run(
              std::move(sub.ops), [state_ptr, stats_ptr, target_ptr,
                                   issue_time](TxnResult result) {
                state_ptr->pending = false;
                switch (result.outcome) {
                  case TxnOutcome::kCommitted: ++stats_ptr->committed; break;
                  case TxnOutcome::kAborted: ++stats_ptr->aborted; break;
                  case TxnOutcome::kBlocked: ++stats_ptr->blocked; break;
                }
                stats_ptr->latency_us.add(static_cast<double>(
                    target_ptr->scheduler().now() - issue_time));
              });
          progressed = true;
        }
        if (state.pending || state.head < state.queue.size() ||
            (state.issued_in_batch < quota &&
             state.issued_ops < options.ops_per_client)) {
          busy = true;
        }
        if (state.head == state.queue.size() && !state.pending) {
          state.queue.clear();
          state.head = 0;
        }
      }
      if (!busy) break;
      // Fixed round-robin pumping policy: every cluster advances by up to
      // kPumpChunk events per pass. Purely index-driven, hence one
      // deterministic global interleaving per (seed, options).
      std::uint64_t executed = 0;
      for (std::size_t i = 0; i < keyspace.cluster_count(); ++i) {
        executed += keyspace.cluster(i).scheduler().run(kPumpChunk);
      }
      if (executed == 0 && !progressed) {
        throw std::logic_error(
            "run_keyspace_workload: stalled with transactions in flight");
      }
    }
    // -- quiescent batch boundary -------------------------------------------
    keyspace.settle_all();
    const std::uint64_t batch = stats.batches++;
    if (keyspace.has_light() && options.promote_top_k > 0) {
      // Cooled-off keys go home first (frees light capacity), then the
      // batch's hottest keys are promoted up to the cap. The policy acts on
      // the tracker's guaranteed bounds — in exact mode both collapse to
      // the exact count (identical decisions, pinned digests unchanged);
      // in sketch mode restores need the UPPER bound below the threshold
      // (never restore a possibly-hot key) and promotions the LOWER bound
      // above it (never promote a possibly-cold key).
      for (const Key key : keyspace.remap().remapped_keys()) {
        if (keyspace.hotness().count_upper(key) < options.restore_below) {
          keyspace.restore_key(key, batch);
          ++stats.restored;
        }
      }
      for (const auto& [key, count] :
           keyspace.hotness().top(options.promote_top_k)) {
        if (count < options.promote_min_count) break;  // sorted descending
        if (keyspace.hotness().count_lower(key) < options.promote_min_count) {
          continue;  // sketch upper bound passed but lower bound did not
        }
        if (keyspace.remap().is_remapped(key)) continue;
        if (keyspace.remap().remapped_count() >= options.max_remapped) break;
        keyspace.promote_key(key, batch);
        ++stats.promoted;
      }
    }
    // Roll only between batches: the final batch's window stays readable
    // after the run (the msketch bench cell and the sketch-accuracy tests
    // audit it against the exact oracle).
    if (!all_issued()) keyspace.hotness().roll();
  }
  keyspace.settle_all();
  return stats;
}

}  // namespace atrcp
