#include "keyspace/hotness.hpp"

#include <algorithm>
#include <stdexcept>

namespace atrcp {

HotnessTracker::HotnessTracker(const HotnessOptions& options)
    : cross_check_(options.cross_check) {
  if (options.mode == HotnessMode::kSketch) {
    sketch_ = std::make_unique<FreqSketch>(options.sketch);
  }
}

std::uint64_t HotnessTracker::count(Key key) const {
  if (sketch_) return sketch_->upper_bound(key);
  return exact_count(key);
}

std::uint64_t HotnessTracker::count_lower(Key key) const {
  if (sketch_) return sketch_->lower_bound(key);
  return exact_count(key);
}

std::uint64_t HotnessTracker::exact_count(Key key) const {
  const auto it = window_.find(key);
  return it == window_.end() ? 0 : it->second;
}

namespace {

void sort_hotness(std::vector<std::pair<Key, std::uint64_t>>& entries,
                  std::size_t k) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
}

}  // namespace

std::vector<std::pair<Key, std::uint64_t>> HotnessTracker::top(
    std::size_t k) const {
  if (sketch_) {
    std::vector<std::pair<Key, std::uint64_t>> entries;
    for (const auto& [key, count] : sketch_->top(k)) {
      entries.emplace_back(static_cast<Key>(key), count);
    }
    return entries;
  }
  return exact_top(k);
}

std::vector<std::pair<Key, std::uint64_t>> HotnessTracker::exact_top(
    std::size_t k) const {
  std::vector<std::pair<Key, std::uint64_t>> entries(window_.begin(),
                                                     window_.end());
  sort_hotness(entries, k);
  return entries;
}

void HotnessTracker::roll() {
  lifetime_ += total_;
  total_ = 0;
  window_.clear();
  if (sketch_) sketch_->clear();
}

std::string to_string(HotKeyState state) {
  switch (state) {
    case HotKeyState::kNormal: return "normal";
    case HotKeyState::kRemapped: return "remapped";
    case HotKeyState::kRestored: return "restored";
  }
  return "?";
}

std::string RemapTransition::to_string() const {
  return "k=" + std::to_string(key) + " " + atrcp::to_string(from) + "->" +
         atrcp::to_string(to) + "@b" + std::to_string(batch);
}

HotKeyState HotKeyRemapManager::state(Key key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? HotKeyState::kNormal : it->second;
}

void HotKeyRemapManager::promote(Key key, std::uint64_t batch) {
  const HotKeyState from = state(key);
  if (from == HotKeyState::kRemapped) {
    throw std::logic_error("HotKeyRemapManager: key already remapped");
  }
  states_[key] = HotKeyState::kRemapped;
  log_.push_back({key, from, HotKeyState::kRemapped, batch});
  ++remapped_;
}

void HotKeyRemapManager::restore(Key key, std::uint64_t batch) {
  if (state(key) != HotKeyState::kRemapped) {
    throw std::logic_error("HotKeyRemapManager: key is not remapped");
  }
  states_[key] = HotKeyState::kRestored;
  log_.push_back({key, HotKeyState::kRemapped, HotKeyState::kRestored, batch});
  --remapped_;
}

std::vector<Key> HotKeyRemapManager::remapped_keys() const {
  std::vector<Key> keys;
  for (const auto& [key, state] : states_) {
    if (state == HotKeyState::kRemapped) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<Key> HotKeyRemapManager::ever_remapped_keys() const {
  std::vector<Key> keys;
  for (const auto& [key, state] : states_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace atrcp
