#include "keyspace/hotness.hpp"

#include <algorithm>
#include <stdexcept>

namespace atrcp {

std::uint64_t HotnessTracker::count(Key key) const {
  const auto it = window_.find(key);
  return it == window_.end() ? 0 : it->second;
}

std::vector<std::pair<Key, std::uint64_t>> HotnessTracker::top(
    std::size_t k) const {
  std::vector<std::pair<Key, std::uint64_t>> entries(window_.begin(),
                                                     window_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

void HotnessTracker::roll() {
  lifetime_ += total_;
  total_ = 0;
  window_.clear();
}

std::string to_string(HotKeyState state) {
  switch (state) {
    case HotKeyState::kNormal: return "normal";
    case HotKeyState::kRemapped: return "remapped";
    case HotKeyState::kRestored: return "restored";
  }
  return "?";
}

std::string RemapTransition::to_string() const {
  return "k=" + std::to_string(key) + " " + atrcp::to_string(from) + "->" +
         atrcp::to_string(to) + "@b" + std::to_string(batch);
}

HotKeyState HotKeyRemapManager::state(Key key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? HotKeyState::kNormal : it->second;
}

void HotKeyRemapManager::promote(Key key, std::uint64_t batch) {
  const HotKeyState from = state(key);
  if (from == HotKeyState::kRemapped) {
    throw std::logic_error("HotKeyRemapManager: key already remapped");
  }
  states_[key] = HotKeyState::kRemapped;
  log_.push_back({key, from, HotKeyState::kRemapped, batch});
  ++remapped_;
}

void HotKeyRemapManager::restore(Key key, std::uint64_t batch) {
  if (state(key) != HotKeyState::kRemapped) {
    throw std::logic_error("HotKeyRemapManager: key is not remapped");
  }
  states_[key] = HotKeyState::kRestored;
  log_.push_back({key, HotKeyState::kRemapped, HotKeyState::kRestored, batch});
  --remapped_;
}

std::vector<Key> HotKeyRemapManager::remapped_keys() const {
  std::vector<Key> keys;
  for (const auto& [key, state] : states_) {
    if (state == HotKeyState::kRemapped) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<Key> HotKeyRemapManager::ever_remapped_keys() const {
  std::vector<Key> keys;
  for (const auto& [key, state] : states_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace atrcp
