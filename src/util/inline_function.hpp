// A small-buffer-optimized, move-only `void()` callable — the zero-alloc
// replacement for std::function in the scheduler's hot path.
//
// Every closure the simulator schedules captures a handful of pointers and
// ids (the largest, Network's delivery closure, is 40 bytes), so the
// default 48-byte inline buffer stores them all in place: scheduling an
// event performs no heap allocation and moving an entry inside the event
// queue is a constant-time relocation. Oversized callables still work —
// they transparently fall back to a heap box — so correctness never
// depends on the capture fitting.
//
// Deliberately minimal compared to std::function: no copy (the queue only
// moves), no target_type, void() signature only. The dispatch table is one
// static per stored type (invoke / relocate / destroy), the same technique
// production executors use for their task cells.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace atrcp {

template <std::size_t Capacity = 48>
class InlineFunction {
  static_assert(Capacity >= sizeof(void*),
                "buffer must at least hold the heap-fallback pointer");

 public:
  InlineFunction() noexcept = default;
  /// Matches std::function's nullptr conversion so call sites that pass
  /// `nullptr` for "no action" keep compiling.
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFunction(F&& callable) {  // NOLINT(google-explicit-constructor)
    using Stored = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Stored>()) {
      ::new (static_cast<void*>(storage_)) Stored(std::forward<F>(callable));
      ops_ = &kInlineOps<Stored>;
    } else {
      ::new (static_cast<void*>(storage_))
          Stored*(new Stored(std::forward<F>(callable)));
      ops_ = &kBoxedOps<Stored>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { destroy(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// True iff a callable of type F would be stored in the inline buffer
  /// (used by tests to pin the no-allocation property of known closures).
  template <class F>
  static constexpr bool stores_inline() {
    return fits_inline<std::remove_cvref_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst from src, then destroys src. nullptr means the
    /// stored representation is trivially copyable (including the boxed
    /// pointer) and relocation is a fixed-size buffer memcpy — the common
    /// case for the simulator's pointer-and-id captures, which then move
    /// through the event queue without any indirect call.
    void (*relocate)(void* src, void* dst) noexcept;
    /// nullptr means trivially destructible: destruction is a no-op.
    void (*destroy)(void*) noexcept;
  };

  void relocate_from(InlineFunction& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, Capacity);
    }
  }

  void destroy() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage_);
  }

  template <class Stored>
  static constexpr bool fits_inline() {
    return sizeof(Stored) <= Capacity &&
           alignof(Stored) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Stored>;
  }

  template <class Stored>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*std::launder(static_cast<Stored*>(storage)))(); },
      std::is_trivially_copyable_v<Stored>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              Stored* from = std::launder(static_cast<Stored*>(src));
              ::new (dst) Stored(std::move(*from));
              from->~Stored();
            },
      std::is_trivially_destructible_v<Stored>
          ? nullptr
          : +[](void* storage) noexcept {
              std::launder(static_cast<Stored*>(storage))->~Stored();
            }};

  template <class Stored>
  static constexpr Ops kBoxedOps{
      [](void* storage) {
        (**std::launder(static_cast<Stored**>(storage)))();
      },
      nullptr,  // the boxed pointer itself is trivially copyable
      [](void* storage) noexcept {
        delete *std::launder(static_cast<Stored**>(storage));
      }};

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace atrcp
