// Small numeric helpers shared across the analysis code: exact integer
// combinatorics (for availability enumeration), integer powers/logs (for
// tree sizing), and tolerant floating-point comparison (for tests that check
// closed-form formulas against measured or LP-computed values).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace atrcp {

/// Exact binomial coefficient C(n, k). Throws std::overflow_error if the
/// result does not fit in 64 bits. C(0,0) == 1; k > n yields 0.
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

/// base^exp over unsigned 64-bit integers; throws std::overflow_error on
/// wrap-around so tree-sizing bugs surface instead of aliasing.
std::uint64_t pow_u64(std::uint64_t base, std::uint32_t exp);

/// floor(log2(x)) for x >= 1.
std::uint32_t floor_log2(std::uint64_t x);

/// True iff x == 2^k for some k >= 0.
bool is_power_of_two(std::uint64_t x);

/// The largest s with s*s <= x (integer square root).
std::uint64_t isqrt(std::uint64_t x);

/// a * b, or nullopt if the product does not fit in 64 bits. For counting
/// code (quorum enumeration bounds) that must detect overflow instead of
/// silently wrapping or rounding through double.
std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b);

/// Relative-or-absolute tolerance comparison used throughout the tests:
/// |a-b| <= atol + rtol*max(|a|,|b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// P[X = k] for X ~ Binomial(n, p). Computed in log space for stability.
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// P[X >= k] for X ~ Binomial(n, p).
double binomial_sf(std::uint64_t n, std::uint64_t k, double p);

/// The partitions of n into exactly parts non-decreasing positive integers,
/// each part <= max_part. Used by the spectrum configurator's search space.
/// Every returned vector v satisfies v[0] <= v[1] <= ... and sum(v) == n.
std::vector<std::vector<std::uint32_t>> partitions_non_decreasing(
    std::uint32_t n, std::uint32_t parts, std::uint32_t max_part);

}  // namespace atrcp
