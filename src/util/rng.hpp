// Deterministic pseudo-random number generation for simulations and
// randomized property tests.
//
// We deliberately avoid std::mt19937 + std::uniform_int_distribution for
// anything whose output is recorded in tests or experiment output: the
// standard distributions are not reproducible across standard-library
// implementations. Xoshiro256** seeded through SplitMix64, together with
// Lemire-style bounded integers, gives identical streams everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace atrcp {

/// SplitMix64: tiny, fast generator used to expand a single 64-bit seed into
/// the 256-bit state of Xoshiro256**. Also usable standalone for hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the library's workhorse RNG. Satisfies
/// std::uniform_random_bit_generator so it can also drive <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection method:
  /// unbiased and reproducible across platforms. Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Fast path covers every bound we use; rejection loop guards bias.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability prob (clamped to [0,1]).
  bool chance(double prob) noexcept { return uniform() < prob; }

  /// Derive an independent child generator (for per-site / per-test streams).
  Rng fork() noexcept { return Rng(next() ^ 0xA0761D6478BD642FULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace atrcp
