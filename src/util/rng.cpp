#include "util/rng.hpp"

// Header-only implementation; this translation unit exists so the util
// library has an archive member and the header is compiled standalone.
namespace atrcp {
static_assert(Rng::min() == 0);
}  // namespace atrcp
