#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace atrcp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must be non-empty");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width != header width");
  }
  rows_.push_back(std::move(row));
}

void Table::print_text(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << std::fixed << value;
  std::string s = ss.str();
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

}  // namespace atrcp
