#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace atrcp {

void SampleSummary::add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

void SampleSummary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double SampleSummary::mean() const {
  if (values_.empty()) throw std::logic_error("SampleSummary: empty");
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double SampleSummary::min() const {
  if (values_.empty()) throw std::logic_error("SampleSummary: empty");
  ensure_sorted();
  return values_.front();
}

double SampleSummary::max() const {
  if (values_.empty()) throw std::logic_error("SampleSummary: empty");
  ensure_sorted();
  return values_.back();
}

double SampleSummary::percentile(double q) const {
  if (values_.empty()) throw std::logic_error("SampleSummary: empty");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("SampleSummary: q outside [0,1]");
  }
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return values_[std::min(index, values_.size() - 1)];
}

}  // namespace atrcp
