// Lightweight invariant checking for the atrcp libraries.
//
// ATRCP_CHECK is used for internal invariants that indicate a programming
// error if violated; it throws atrcp::InvariantError carrying the failing
// expression and location, which tests can assert on and which terminates
// with a useful message when unhandled.
//
// Input validation on public API boundaries throws std::invalid_argument
// directly (see e.g. core/tree.cpp) — ATRCP_CHECK is for "cannot happen"
// conditions only.
#pragma once

#include <stdexcept>
#include <string>

namespace atrcp {

/// Thrown when an internal invariant is violated (a bug in this library,
/// not a misuse of it).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  throw InvariantError(std::string("invariant violated: ") + expr + " at " +
                       file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace atrcp

#define ATRCP_CHECK(expr)                                       \
  do {                                                          \
    if (!(expr)) {                                              \
      ::atrcp::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                           \
  } while (false)
