#include "util/math.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is exact at every step because the running
    // product is always a binomial coefficient; only overflow can spoil it.
    const std::uint64_t factor = n - k + i;
    if (result > std::numeric_limits<std::uint64_t>::max() / factor) {
      throw std::overflow_error("binomial: result exceeds 64 bits");
    }
    result = result * factor / i;
  }
  return result;
}

std::uint64_t pow_u64(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t result = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (base != 0 && result > std::numeric_limits<std::uint64_t>::max() / base) {
      throw std::overflow_error("pow_u64: result exceeds 64 bits");
    }
    result *= base;
  }
  return result;
}

std::uint32_t floor_log2(std::uint64_t x) {
  if (x == 0) throw std::invalid_argument("floor_log2: x must be >= 1");
  std::uint32_t result = 0;
  while (x >>= 1) ++result;
  return result;
}

bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  auto guess = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  // std::sqrt can be off by one ulp near perfect squares; fix up exactly.
  // Compare via division: guess*guess (and worse, (guess+1)*(guess+1) when
  // guess is already 2^32) wraps modulo 2^64 — for x near UINT64_MAX the
  // wrapped product is tiny and a product-based loop walks off the answer.
  // guess > x / guess  <=>  guess * guess > x for positive integers.
  while (guess > 0 && guess > x / guess) --guess;
  while (guess + 1 <= x / (guess + 1)) ++guess;
  return guess;
}

std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::nullopt;
  }
  return a * b;
}

bool approx_equal(double a, double b, double rtol, double atol) {
  const double diff = std::abs(a - b);
  const double scale = std::max(std::abs(a), std::abs(b));
  return diff <= atol + rtol * scale;
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = std::lgamma(static_cast<double>(n) + 1) -
                         std::lgamma(static_cast<double>(k) + 1) -
                         std::lgamma(static_cast<double>(n - k) + 1) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_sf(std::uint64_t n, std::uint64_t k, double p) {
  double total = 0.0;
  for (std::uint64_t i = k; i <= n; ++i) total += binomial_pmf(n, i, p);
  return std::min(total, 1.0);
}

namespace {
void partitions_rec(std::uint32_t remaining, std::uint32_t parts,
                    std::uint32_t min_part, std::uint32_t max_part,
                    std::vector<std::uint32_t>& prefix,
                    std::vector<std::vector<std::uint32_t>>& out) {
  if (parts == 0) {
    if (remaining == 0) out.push_back(prefix);
    return;
  }
  // Remaining parts must each be >= min_part and the sequence non-decreasing,
  // so the smallest feasible completion is parts * min_part and the largest
  // is parts * max_part; prune outside that window.
  for (std::uint32_t part = min_part; part <= max_part; ++part) {
    const std::uint64_t lo = static_cast<std::uint64_t>(part) * parts;
    if (lo > remaining) break;
    const std::uint64_t hi = static_cast<std::uint64_t>(max_part) * (parts - 1);
    if (static_cast<std::uint64_t>(remaining) - part > hi) continue;
    prefix.push_back(part);
    partitions_rec(remaining - part, parts - 1, part, max_part, prefix, out);
    prefix.pop_back();
  }
}
}  // namespace

std::vector<std::vector<std::uint32_t>> partitions_non_decreasing(
    std::uint32_t n, std::uint32_t parts, std::uint32_t max_part) {
  std::vector<std::vector<std::uint32_t>> out;
  if (parts == 0) return out;
  std::vector<std::uint32_t> prefix;
  prefix.reserve(parts);
  partitions_rec(n, parts, 1, max_part, prefix, out);
  return out;
}

}  // namespace atrcp
