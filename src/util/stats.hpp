// Small sample-summary utility for the workload harness: collects values
// and reports count/mean/min/max and exact percentiles (nearest-rank over
// the sorted sample — fine at simulation scales, no streaming sketches
// needed).
#pragma once

#include <cstddef>
#include <vector>

namespace atrcp {

class SampleSummary {
 public:
  void add(double value);

  std::size_t count() const noexcept { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;

  /// Nearest-rank percentile; q in [0, 1]. Throws std::logic_error on an
  /// empty summary and std::invalid_argument for q outside [0, 1].
  double percentile(double q) const;

 private:
  // Kept sorted lazily: sorted on first query after an insertion burst.
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace atrcp
