// Console table / CSV emission shared by the benchmark harness binaries.
//
// Every figure/table bench prints (a) an aligned human-readable table and
// (b) optionally the same data as CSV so the series can be re-plotted.
#pragma once

#include <concepts>
#include <iosfwd>
#include <string>
#include <vector>

namespace atrcp {

/// A simple column-oriented table: set the header once, append rows of the
/// same width, print aligned text or CSV. Cells are preformatted strings;
/// use the cell() helpers for numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Aligned fixed-width text, suitable for terminal output.
  void print_text(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision, trimming to a compact form.
std::string cell(double value, int precision = 4);

/// Format any integer cell.
template <typename Int>
  requires std::integral<Int>
std::string cell(Int value) {
  return std::to_string(value);
}

}  // namespace atrcp
