// Strategies and induced loads — Definitions 2.4 and 2.5 of the paper.
//
// A strategy is a probability distribution over the sets of a set system.
// The load it induces on replica i is the probability that a picked quorum
// contains i; the system load of the strategy is the max over replicas; and
// the (optimal) system load of the system is the min over strategies (which
// quorum/lp.hpp computes exactly via linear programming).
#pragma once

#include <vector>

#include "quorum/set_system.hpp"
#include "quorum/types.hpp"
#include "util/rng.hpp"

namespace atrcp {

/// A probability distribution over the sets of a SetSystem (Definition 2.4).
class Strategy {
 public:
  /// weights need not be normalized; they are normalized on construction.
  /// Throws std::invalid_argument if empty, any weight is negative, or the
  /// total is zero.
  explicit Strategy(std::vector<double> weights);

  /// The uniform strategy over set_count sets — the strategy the paper uses
  /// for both read (w_j = 1/m(R)) and write (w_j = 1/m(W)) operations.
  static Strategy uniform(std::size_t set_count);

  const std::vector<double>& weights() const noexcept { return weights_; }
  std::size_t set_count() const noexcept { return weights_.size(); }

  /// Sample a set index according to the distribution.
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> weights_;
};

/// Definition 2.5: l_w(i) = sum of w_j over sets S_j containing replica i,
/// for every replica of the universe. Throws if sizes mismatch.
std::vector<double> induced_loads(const SetSystem& system,
                                  const Strategy& strategy);

/// Definition 2.5: L_w(S) = max_i l_w(i).
double strategy_load(const SetSystem& system, const Strategy& strategy);

/// Proposition 2.1 witness check: given y in [0,1]^n with y(U) = 1 and
/// y(S) >= L for all S, the load L is optimal. Returns true iff y certifies
/// the bound L (within tolerance).
bool certifies_lower_bound(const SetSystem& system,
                           const std::vector<double>& y, double load,
                           double tol = 1e-9);

/// Empirically measure the per-replica load by drawing `samples` quorums
/// from the strategy and counting membership frequencies. Converges to
/// induced_loads(); used by tests and the empirical-load bench to tie the
/// closed forms to executed behaviour.
std::vector<double> empirical_loads(const SetSystem& system,
                                    const Strategy& strategy,
                                    std::size_t samples, Rng& rng);

}  // namespace atrcp
