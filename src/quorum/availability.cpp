#include "quorum/availability.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace atrcp {

double exact_availability(const SetSystem& system, double p) {
  const std::size_t n = system.universe_size();
  if (n > 24) {
    throw std::invalid_argument(
        "exact_availability: universe too large for exhaustive enumeration");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("exact_availability: p outside [0,1]");
  }
  // Represent each quorum as a bitmask of its members; a configuration
  // (bitmask of alive replicas) is available iff it contains some quorum.
  std::vector<std::uint32_t> masks;
  masks.reserve(system.set_count());
  for (const Quorum& q : system.sets()) {
    std::uint32_t mask = 0;
    for (ReplicaId id : q.members()) mask |= (1u << id);
    masks.push_back(mask);
  }

  double available = 0.0;
  const std::uint32_t configs = 1u << n;
  for (std::uint32_t alive = 0; alive < configs; ++alive) {
    bool ok = false;
    for (std::uint32_t mask : masks) {
      if ((alive & mask) == mask) {
        ok = true;
        break;
      }
    }
    if (!ok) continue;
    const int alive_count = std::popcount(alive);
    available += std::pow(p, alive_count) *
                 std::pow(1.0 - p, static_cast<int>(n) - alive_count);
  }
  return available;
}

FailureSet sample_failures(std::size_t universe_size, double p, Rng& rng) {
  FailureSet failures(universe_size);
  for (std::size_t i = 0; i < universe_size; ++i) {
    if (!rng.chance(p)) failures.fail(static_cast<ReplicaId>(i));
  }
  return failures;
}

double monte_carlo_availability(const SetSystem& system, double p,
                                std::size_t trials, Rng& rng) {
  return monte_carlo_availability(
      system.universe_size(), p, trials, rng,
      [&system](const FailureSet& failures) {
        for (const Quorum& q : system.sets()) {
          if (failures.all_alive(q)) return true;
        }
        return false;
      });
}

double monte_carlo_availability(
    std::size_t universe_size, double p, std::size_t trials, Rng& rng,
    const std::function<bool(const FailureSet&)>& can_assemble) {
  if (trials == 0) {
    throw std::invalid_argument("monte_carlo_availability: trials must be > 0");
  }
  std::size_t successes = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const FailureSet failures = sample_failures(universe_size, p, rng);
    if (can_assemble(failures)) ++successes;
  }
  return static_cast<double>(successes) / static_cast<double>(trials);
}

}  // namespace atrcp
