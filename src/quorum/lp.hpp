// Exact computation of the optimal system load L(S) of a set system
// (Definition 2.5's min over strategies) via linear programming.
//
// We use the classic fractional-matching reformulation (Naor & Wool [10]):
//
//   1/L(S)  =  max Σ_j w_j   s.t.  Σ_{j : i ∈ S_j} w_j <= 1 for every
//                                   replica i, and w >= 0.
//
// Any strategy with load L can be scaled to a feasible w of total 1/L and
// vice versa, so the optimum T* of this LP satisfies L(S) = 1/T*. The LP is
// in pure standard form (b = 1 >= 0), so a single-phase dense primal simplex
// with Bland's anti-cycling rule solves it. The dual solution, normalized by
// T*, is exactly the y-vector of Proposition 2.1 — a machine-checkable
// optimality certificate, which the tests verify for every system they solve.
//
// This is an oracle for small/medium systems (thousands of quorums); the
// closed-form loads in core/analysis are what production code uses.
#pragma once

#include <vector>

#include "quorum/set_system.hpp"
#include "quorum/strategy.hpp"

namespace atrcp {

/// Result of a standard-form simplex solve: maximize c·x s.t. Ax <= b, x >= 0
/// with b >= 0 (so the slack basis is feasible and no phase one is needed).
struct SimplexResult {
  bool bounded = true;          ///< false if the LP is unbounded
  double objective = 0.0;       ///< optimal objective value (if bounded)
  std::vector<double> x;        ///< optimal primal solution
  std::vector<double> duals;    ///< optimal dual values, one per constraint
};

/// Dense primal simplex in standard form. Throws std::invalid_argument on
/// dimension mismatch or negative entries of b.
SimplexResult simplex_maximize(const std::vector<double>& c,
                               const std::vector<std::vector<double>>& A,
                               const std::vector<double>& b);

/// The optimal system load of a set system together with an achieving
/// strategy and a Proposition-2.1 certificate vector y.
struct OptimalLoad {
  double load = 0.0;            ///< L(S)
  Strategy strategy;            ///< a strategy attaining L(S)
  std::vector<double> y;        ///< certificate: y(U)=1, y(S)>=load ∀S
};

/// Computes L(S) exactly. Requires a non-empty system whose every replica in
/// [0, universe) may or may not appear in sets; replicas in no set simply
/// carry zero load. Throws std::invalid_argument on an empty system or a
/// system containing an empty set (whose load would be 0 with an unbounded
/// matching LP).
OptimalLoad optimal_load(const SetSystem& system);

}  // namespace atrcp
