#include "quorum/resilience.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

namespace {

/// Branch-and-bound: find a minimum set of replicas hitting every quorum.
/// Branches on the members of the smallest not-yet-hit quorum (every valid
/// transversal must contain one of them), pruning at `best`.
class TransversalSolver {
 public:
  explicit TransversalSolver(const SetSystem& system) : system_(system) {}

  std::vector<ReplicaId> solve(std::size_t budget) {
    best_size_ = std::min(budget, system_.universe_size()) + 1;
    // A greedy warm start tightens the bound: repeatedly pick the replica
    // covering the most unhit quorums.
    greedy_warm_start();
    std::vector<ReplicaId> chosen;
    std::vector<bool> hit(system_.set_count(), false);
    branch(chosen, hit, system_.set_count());
    return best_;
  }

 private:
  void greedy_warm_start() {
    std::vector<bool> hit(system_.set_count(), false);
    std::size_t remaining = system_.set_count();
    std::vector<ReplicaId> chosen;
    while (remaining > 0) {
      std::vector<std::size_t> coverage(system_.universe_size(), 0);
      for (std::size_t j = 0; j < system_.set_count(); ++j) {
        if (hit[j]) continue;
        for (ReplicaId id : system_.sets()[j].members()) ++coverage[id];
      }
      const auto best_it =
          std::max_element(coverage.begin(), coverage.end());
      const auto pick =
          static_cast<ReplicaId>(std::distance(coverage.begin(), best_it));
      chosen.push_back(pick);
      for (std::size_t j = 0; j < system_.set_count(); ++j) {
        if (!hit[j] && system_.sets()[j].contains(pick)) {
          hit[j] = true;
          --remaining;
        }
      }
    }
    if (chosen.size() < best_size_) {
      best_size_ = chosen.size();
      best_ = std::move(chosen);
    }
  }

  void branch(std::vector<ReplicaId>& chosen, std::vector<bool>& hit,
              std::size_t unhit) {
    if (unhit == 0) {
      if (chosen.size() < best_size_) {
        best_size_ = chosen.size();
        best_ = chosen;
      }
      return;
    }
    if (chosen.size() + 1 >= best_size_) return;  // cannot improve
    // Pick the smallest unhit quorum to branch on.
    std::size_t pivot = system_.set_count();
    for (std::size_t j = 0; j < system_.set_count(); ++j) {
      if (hit[j]) continue;
      if (pivot == system_.set_count() ||
          system_.sets()[j].size() < system_.sets()[pivot].size()) {
        pivot = j;
      }
    }
    ATRCP_CHECK(pivot != system_.set_count());
    for (ReplicaId candidate : system_.sets()[pivot].members()) {
      if (std::find(chosen.begin(), chosen.end(), candidate) !=
          chosen.end()) {
        continue;
      }
      // Apply: mark every quorum containing candidate as hit.
      std::vector<std::size_t> newly_hit;
      for (std::size_t j = 0; j < system_.set_count(); ++j) {
        if (!hit[j] && system_.sets()[j].contains(candidate)) {
          hit[j] = true;
          newly_hit.push_back(j);
        }
      }
      chosen.push_back(candidate);
      branch(chosen, hit, unhit - newly_hit.size());
      chosen.pop_back();
      for (std::size_t j : newly_hit) hit[j] = false;
    }
  }

  const SetSystem& system_;
  std::size_t best_size_ = 0;
  std::vector<ReplicaId> best_;
};

void validate(const SetSystem& system) {
  if (system.set_count() == 0) {
    throw std::invalid_argument("resilience: empty system");
  }
  for (const Quorum& q : system.sets()) {
    if (q.empty()) {
      throw std::invalid_argument("resilience: empty quorum cannot be hit");
    }
  }
}

}  // namespace

std::size_t min_transversal_size(const SetSystem& system,
                                 std::size_t budget) {
  validate(system);
  TransversalSolver solver(system);
  const auto transversal = solver.solve(budget);
  if (transversal.empty() && system.set_count() > 0) {
    // No transversal within budget (greedy always finds one within
    // universe size, so this means the caller's budget was exceeded).
    return budget + 1;
  }
  return transversal.size();
}

std::vector<ReplicaId> min_transversal(const SetSystem& system) {
  validate(system);
  TransversalSolver solver(system);
  return solver.solve(system.universe_size());
}

std::size_t resilience(const SetSystem& system) {
  return min_transversal_size(system) - 1;
}

}  // namespace atrcp
