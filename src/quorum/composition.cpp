#include "quorum/composition.hpp"

#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

SetSystem compose(const SetSystem& outer, const std::vector<SetSystem>& inner,
                  std::size_t limit) {
  if (outer.universe_size() != inner.size()) {
    throw std::invalid_argument(
        "compose: outer universe must index the inner systems");
  }
  // Re-base each inner system onto a combined universe.
  std::vector<std::size_t> offset(inner.size() + 1, 0);
  for (std::size_t i = 0; i < inner.size(); ++i) {
    offset[i + 1] = offset[i] + inner[i].universe_size();
  }

  std::vector<Quorum> composed;
  for (const Quorum& outer_set : outer.sets()) {
    // Odometer over the chosen elements' inner quorum lists.
    const auto& elements = outer_set.members();
    if (elements.empty()) continue;
    std::vector<std::size_t> idx(elements.size(), 0);
    while (true) {
      std::vector<ReplicaId> members;
      for (std::size_t e = 0; e < elements.size(); ++e) {
        const std::size_t element = elements[e];
        const Quorum& pick = inner[element].sets()[idx[e]];
        for (ReplicaId id : pick.members()) {
          members.push_back(static_cast<ReplicaId>(offset[element] + id));
        }
      }
      composed.emplace_back(std::move(members));
      if (composed.size() > limit) {
        throw std::length_error("compose: quorum limit exceeded");
      }
      std::size_t e = 0;
      while (e < elements.size()) {
        if (++idx[e] < inner[elements[e]].sets().size()) break;
        idx[e] = 0;
        ++e;
      }
      if (e == elements.size()) break;
    }
  }
  return SetSystem(offset.back(), std::move(composed));
}

SetSystem all_of(std::size_t k) {
  std::vector<ReplicaId> members(k);
  std::iota(members.begin(), members.end(), 0);
  return SetSystem(k, {Quorum(std::move(members))});
}

SetSystem one_of(std::size_t k) {
  std::vector<Quorum> sets;
  sets.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    sets.push_back(Quorum{static_cast<ReplicaId>(i)});
  }
  return SetSystem(k, std::move(sets));
}

namespace {
void subsets_of_size(std::size_t k, std::size_t size, std::size_t start,
                     std::vector<ReplicaId>& prefix,
                     std::vector<Quorum>& out) {
  if (prefix.size() == size) {
    out.emplace_back(prefix);
    return;
  }
  for (std::size_t i = start; i < k; ++i) {
    prefix.push_back(static_cast<ReplicaId>(i));
    subsets_of_size(k, size, i + 1, prefix, out);
    prefix.pop_back();
  }
}
}  // namespace

SetSystem majority_of(std::size_t k) {
  if (k == 0) throw std::invalid_argument("majority_of: k must be > 0");
  std::vector<Quorum> sets;
  std::vector<ReplicaId> prefix;
  subsets_of_size(k, k / 2 + 1, 0, prefix, sets);
  return SetSystem(k, std::move(sets));
}

SetSystem need_of_three(std::uint32_t need) {
  if (need < 1 || need > 3) {
    throw std::invalid_argument("need_of_three: need must be in [1,3]");
  }
  std::vector<Quorum> sets;
  std::vector<ReplicaId> prefix;
  subsets_of_size(3, need, 0, prefix, sets);
  return SetSystem(3, std::move(sets));
}

SetSystem hqc_by_composition(std::uint32_t depth, std::uint32_t need,
                             std::size_t limit) {
  SetSystem level(1, {Quorum{0}});
  for (std::uint32_t d = 0; d < depth; ++d) {
    level = compose(need_of_three(need), {level, level, level}, limit);
  }
  return level;
}

}  // namespace atrcp
