#include "quorum/lp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

SimplexResult simplex_maximize(const std::vector<double>& c,
                               const std::vector<std::vector<double>>& A,
                               const std::vector<double>& b) {
  const std::size_t num_vars = c.size();
  const std::size_t num_rows = A.size();
  if (b.size() != num_rows) {
    throw std::invalid_argument("simplex: |b| != rows of A");
  }
  for (const auto& row : A) {
    if (row.size() != num_vars) {
      throw std::invalid_argument("simplex: row width != |c|");
    }
  }
  for (double bi : b) {
    if (bi < 0.0) {
      throw std::invalid_argument("simplex: standard form requires b >= 0");
    }
  }

  // Tableau layout: columns [0, num_vars) are structural variables,
  // [num_vars, num_vars + num_rows) are slacks, the last column is the RHS.
  // Row num_rows is the objective row holding reduced costs (initially -c)
  // and, in its RHS cell, the current objective value.
  const std::size_t cols = num_vars + num_rows + 1;
  std::vector<std::vector<double>> t(num_rows + 1,
                                     std::vector<double>(cols, 0.0));
  std::vector<std::size_t> basis(num_rows);
  for (std::size_t i = 0; i < num_rows; ++i) {
    for (std::size_t j = 0; j < num_vars; ++j) t[i][j] = A[i][j];
    t[i][num_vars + i] = 1.0;
    t[i][cols - 1] = b[i];
    basis[i] = num_vars + i;
  }
  for (std::size_t j = 0; j < num_vars; ++j) t[num_rows][j] = -c[j];

  // Bland's rule guarantees termination; the cap is a defensive backstop.
  const std::size_t max_iterations = 50'000 + 200 * (num_vars + num_rows);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Entering variable: smallest index with negative reduced cost.
    std::size_t enter = cols - 1;
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[num_rows][j] < -kEps) {
        enter = j;
        break;
      }
    }
    if (enter == cols - 1) {  // optimal
      SimplexResult result;
      result.objective = t[num_rows][cols - 1];
      result.x.assign(num_vars, 0.0);
      for (std::size_t i = 0; i < num_rows; ++i) {
        if (basis[i] < num_vars) result.x[basis[i]] = t[i][cols - 1];
      }
      result.duals.assign(num_rows, 0.0);
      for (std::size_t i = 0; i < num_rows; ++i) {
        result.duals[i] = t[num_rows][num_vars + i];
      }
      return result;
    }

    // Leaving row: min ratio, ties broken by smallest basis index (Bland).
    std::size_t leave = num_rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < num_rows; ++i) {
      if (t[i][enter] > kEps) {
        const double ratio = t[i][cols - 1] / t[i][enter];
        if (ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps && leave < num_rows &&
             basis[i] < basis[leave])) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == num_rows) {
      SimplexResult result;
      result.bounded = false;
      return result;
    }

    // Pivot on (leave, enter).
    const double pivot = t[leave][enter];
    for (double& cell : t[leave]) cell /= pivot;
    for (std::size_t i = 0; i <= num_rows; ++i) {
      if (i == leave) continue;
      const double factor = t[i][enter];
      if (std::abs(factor) <= kEps) continue;
      for (std::size_t j = 0; j < cols; ++j) t[i][j] -= factor * t[leave][j];
    }
    basis[leave] = enter;
  }
  throw InvariantError("simplex: iteration cap reached (cycling?)");
}

OptimalLoad optimal_load(const SetSystem& system) {
  const std::size_t m = system.set_count();
  const std::size_t n = system.universe_size();
  if (m == 0) throw std::invalid_argument("optimal_load: empty system");
  for (const Quorum& q : system.sets()) {
    if (q.empty()) throw std::invalid_argument("optimal_load: empty quorum");
  }

  // max Σ w_j s.t. per-replica load <= 1.
  std::vector<double> c(m, 1.0);
  std::vector<std::vector<double>> A(n, std::vector<double>(m, 0.0));
  std::vector<double> b(n, 1.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (ReplicaId id : system.sets()[j].members()) A[id][j] = 1.0;
  }

  const SimplexResult lp = simplex_maximize(c, A, b);
  ATRCP_CHECK(lp.bounded);           // every w_j <= 1 via any member row
  ATRCP_CHECK(lp.objective > kEps);  // w = (1,0,..,0) is feasible

  // Basic-solution entries can carry tiny negative rounding noise; clamp
  // before handing them to Strategy, which rejects negative weights.
  std::vector<double> weights = lp.x;
  for (double& w : weights) w = std::max(w, 0.0);
  OptimalLoad result{1.0 / lp.objective, Strategy(std::move(weights)), {}};
  // Dual: min Σ y_i s.t. y(S_j) >= 1; normalizing by T* gives y(U) = 1 and
  // y(S) >= 1/T* = L — Proposition 2.1's optimality certificate.
  result.y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    result.y[i] = lp.duals[i] / lp.objective;
  }
  return result;
}

}  // namespace atrcp
