// Worst-case fault tolerance of quorum systems.
//
// The resilience of a set system is the largest f such that EVERY set of f
// replica crashes still leaves some quorum fully alive. Equivalently, if
// c(S) is the size of a minimum transversal (hitting set) — the fewest
// replicas whose removal intersects every quorum — then resilience(S) =
// c(S) - 1 (crash a minimum transversal and nothing survives; any smaller
// crash set misses some quorum entirely).
//
// For the arbitrary protocol this yields crisp, testable facts:
//  * read quorums:  a whole smallest physical level (d replicas) is a
//    minimum transversal, so read resilience = d - 1;
//  * write quorums: one replica per physical level hits every level, so
//    write resilience = |K_phy| - 1.
// For majority-of-n, resilience = n - q (the classic floor((n-1)/2)).
//
// Minimum hitting set is NP-hard in general; this solver does exact
// branch-and-bound (branch on the members of an unhit quorum of minimum
// size) and is meant for the analysis/test scale (tens of replicas,
// hundreds of quorums), like the LP oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "quorum/set_system.hpp"

namespace atrcp {

/// Size of a minimum hitting set (transversal) of the system's sets.
/// Throws std::invalid_argument on an empty system or one with an empty
/// set (which cannot be hit). `budget` caps the search depth; if no
/// transversal within budget exists, returns budget + 1 (useful as "at
/// least"). Default budget = universe size (always sufficient).
std::size_t min_transversal_size(const SetSystem& system,
                                 std::size_t budget = SIZE_MAX);

/// One minimum transversal (the replicas to crash to kill every quorum).
std::vector<ReplicaId> min_transversal(const SetSystem& system);

/// resilience(S) = min_transversal_size(S) - 1: the largest f such that
/// any f crashes leave a live quorum.
std::size_t resilience(const SetSystem& system);

}  // namespace atrcp
