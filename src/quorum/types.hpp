// Fundamental vocabulary types of the quorum layer.
//
// A Quorum is an immutable sorted set of replica identifiers; a FailureSet
// is a mutable membership bitmap of crashed replicas. Both are deliberately
// small value types — every protocol in src/protocols and the arbitrary
// protocol in src/core trade in these.
//
// FailureSet is a word-packed bitmap with a running failed-replica count
// (O(1) failed_count) and a globally-unique *epoch* that changes on every
// mutation: protocols key their per-level alive-count caches on it, so a
// quorum assembly under an unchanged failure pattern rescans nothing.
// Universes up to kInlineBits replicas live entirely in inline storage, so
// the per-round FailureSet copies the transaction layer makes are
// allocation-free for every configuration in the repo.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace atrcp {

/// Identifies a replica (equivalently, a site holding a copy of the data).
/// Replica ids are dense: a system of n replicas uses ids [0, n).
using ReplicaId = std::uint32_t;

/// An immutable, sorted, duplicate-free set of replicas. This is the unit
/// a read or write operation must contact in full.
class Quorum {
 public:
  Quorum() = default;

  /// Builds from arbitrary-order members; sorts and deduplicates.
  explicit Quorum(std::vector<ReplicaId> members) : members_(std::move(members)) {
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()),
                   members_.end());
  }

  Quorum(std::initializer_list<ReplicaId> members)
      : Quorum(std::vector<ReplicaId>(members)) {}

  /// Trusted constructor for callers whose members are sorted and
  /// duplicate-free by construction (per-level tree walks, level slices):
  /// adopts the vector without the O(m log m) sort + unique pass of the
  /// public constructor. The precondition is debug-asserted; release
  /// builds trust the caller.
  static Quorum from_sorted(std::vector<ReplicaId> members) {
    assert(std::is_sorted(members.begin(), members.end()) &&
           std::adjacent_find(members.begin(), members.end()) ==
               members.end() &&
           "Quorum::from_sorted: members must be sorted and duplicate-free");
    Quorum quorum;
    quorum.members_ = std::move(members);
    return quorum;
  }

  std::span<const ReplicaId> members() const noexcept { return members_; }
  std::size_t size() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }

  bool contains(ReplicaId id) const noexcept {
    return std::binary_search(members_.begin(), members_.end(), id);
  }

  /// True iff the two quorums share at least one replica. O(|a| + |b|).
  bool intersects(const Quorum& other) const noexcept {
    auto a = members_.begin();
    auto b = other.members_.begin();
    while (a != members_.end() && b != other.members_.end()) {
      if (*a == *b) return true;
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
    return false;
  }

  /// True iff every member of this quorum is a member of other.
  bool subset_of(const Quorum& other) const noexcept {
    return std::includes(other.members_.begin(), other.members_.end(),
                         members_.begin(), members_.end());
  }

  friend bool operator==(const Quorum&, const Quorum&) = default;
  friend auto operator<=>(const Quorum& a, const Quorum& b) {
    return std::lexicographical_compare_three_way(
        a.members_.begin(), a.members_.end(), b.members_.begin(),
        b.members_.end());
  }

  /// "{0, 3, 7}" — for test failure messages and example output.
  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(members_[i]);
    }
    out += "}";
    return out;
  }

 private:
  std::vector<ReplicaId> members_;
};

namespace detail {
/// Hands out globally-unique epoch values (never 0). Each value is issued
/// exactly once, so an epoch identifies one immutable snapshot of one
/// FailureSet's contents — the key property the protocol-side assembly
/// caches rely on. Copies share their source's epoch (equal contents),
/// which is what lets a cache survive the by-value failure views the
/// transaction layer passes around.
///
/// Allocation is block-wise thread-local: each thread claims a 2^32-value
/// block from one shared atomic, then serves epochs from a plain
/// thread-local counter. FailureSets are constructed and mutated on every
/// transaction of every shard, so a single shared fetch_add here was a
/// cross-worker cache-line ping-pong on the sim hot path under `--jobs N`
/// (EXPERIMENTS.md E20); now a worker touches shared state once per 2^32
/// epochs. Values are unique across threads (disjoint blocks) and
/// monotone within a thread; epochs are only ever compared for equality,
/// never ordered or serialized, so the cross-thread numbering gap is
/// unobservable.
inline std::uint64_t next_failure_epoch() noexcept {
  constexpr std::uint64_t kBlock = std::uint64_t{1} << 32;
  static std::atomic<std::uint64_t> next_block{0};
  thread_local std::uint64_t next = 0;
  thread_local std::uint64_t limit = 0;
  if (next == limit) {
    const std::uint64_t base =
        next_block.fetch_add(1, std::memory_order_relaxed) * kBlock;
    next = base + 1;  // + 1 keeps 0 reserved as "no epoch"
    limit = base + kBlock;
  }
  return next++;
}
}  // namespace detail

/// The set of currently-crashed replicas of a system of fixed size n.
/// Fail-stop per the paper's model: a failed replica answers nothing.
class FailureSet {
 public:
  /// Universes at most this large need no heap storage (bitmap inlined).
  static constexpr std::size_t kInlineBits = 256;

  FailureSet() = default;
  explicit FailureSet(std::size_t universe_size) : size_(universe_size) {
    if (word_count() > kInlineWords) heap_.resize(word_count(), 0);
  }

  std::size_t universe_size() const noexcept { return size_; }

  bool is_failed(ReplicaId id) const noexcept {
    return id < size_ && (words()[id >> 6] >> (id & 63) & 1) != 0;
  }
  bool is_alive(ReplicaId id) const noexcept { return !is_failed(id); }

  void fail(ReplicaId id) {
    if (id >= size_) grow(static_cast<std::size_t>(id) + 1);
    std::uint64_t& word = words()[id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if ((word & bit) == 0) {
      word |= bit;
      ++failed_count_;
      epoch_ = detail::next_failure_epoch();
    }
  }
  void recover(ReplicaId id) {
    if (id >= size_) return;
    std::uint64_t& word = words()[id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if ((word & bit) != 0) {
      word &= ~bit;
      --failed_count_;
      epoch_ = detail::next_failure_epoch();
    }
  }

  /// O(1): a running count maintained by fail/recover (and verified
  /// against a popcount of the bitmap in debug builds).
  std::size_t failed_count() const noexcept {
    assert(failed_count_ == popcount_all());
    return failed_count_;
  }
  std::size_t alive_count() const noexcept { return size_ - failed_count_; }

  /// Identifies this exact failure pattern: two FailureSet objects with
  /// the same epoch have identical contents (copies share epochs; every
  /// mutation installs a fresh, never-reused value). Cache quorum-
  /// assembly work keyed on this.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// ORs other's failed replicas into this set (word-wise), growing the
  /// universe if other's is larger. Installs a fresh epoch only when the
  /// contents actually change. O(universe(other) / 64) — the transaction
  /// layer's per-round suspicion overlay uses this in place of an O(n)
  /// per-replica is_failed/fail scan.
  void merge_failed_from(const FailureSet& other) {
    if (other.failed_count_ == 0) return;
    if (other.size_ > size_) grow(other.size_);
    bool changed = false;
    const std::uint64_t* src = other.words();
    std::uint64_t* dst = words();
    for (std::size_t w = 0; w < other.word_count(); ++w) {
      const std::uint64_t added = src[w] & ~dst[w];
      if (added != 0) {
        dst[w] |= added;
        failed_count_ += static_cast<std::size_t>(std::popcount(added));
        changed = true;
      }
    }
    if (changed) epoch_ = detail::next_failure_epoch();
  }

  /// True iff every member of q is alive (q can be assembled as-is).
  bool all_alive(const Quorum& q) const noexcept {
    if (failed_count_ == 0) return true;
    for (ReplicaId id : q.members()) {
      if (is_failed(id)) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kInlineWords = kInlineBits / 64;

  std::size_t word_count() const noexcept { return (size_ + 63) / 64; }
  const std::uint64_t* words() const noexcept {
    return heap_.empty() ? inline_.data() : heap_.data();
  }
  std::uint64_t* words() noexcept {
    return heap_.empty() ? inline_.data() : heap_.data();
  }

  void grow(std::size_t new_size) {
    const std::size_t new_words = (new_size + 63) / 64;
    if (new_words > kInlineWords && new_words > heap_.size()) {
      if (heap_.empty()) {
        heap_.assign(inline_.begin(), inline_.end());
      }
      heap_.resize(new_words, 0);
    }
    size_ = new_size;
  }

  std::size_t popcount_all() const noexcept {
    std::size_t count = 0;
    for (std::size_t w = 0; w < word_count(); ++w) {
      count += static_cast<std::size_t>(std::popcount(words()[w]));
    }
    return count;
  }

  std::array<std::uint64_t, kInlineWords> inline_{};
  std::vector<std::uint64_t> heap_;  ///< used iff universe > kInlineBits
  std::size_t size_ = 0;
  std::size_t failed_count_ = 0;
  std::uint64_t epoch_ = detail::next_failure_epoch();
};

}  // namespace atrcp
