// Fundamental vocabulary types of the quorum layer.
//
// A Quorum is an immutable sorted set of replica identifiers; a FailureSet
// is a mutable membership bitmap of crashed replicas. Both are deliberately
// small value types — every protocol in src/protocols and the arbitrary
// protocol in src/core trade in these.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace atrcp {

/// Identifies a replica (equivalently, a site holding a copy of the data).
/// Replica ids are dense: a system of n replicas uses ids [0, n).
using ReplicaId = std::uint32_t;

/// An immutable, sorted, duplicate-free set of replicas. This is the unit
/// a read or write operation must contact in full.
class Quorum {
 public:
  Quorum() = default;

  /// Builds from arbitrary-order members; sorts and deduplicates.
  explicit Quorum(std::vector<ReplicaId> members) : members_(std::move(members)) {
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()),
                   members_.end());
  }

  Quorum(std::initializer_list<ReplicaId> members)
      : Quorum(std::vector<ReplicaId>(members)) {}

  std::span<const ReplicaId> members() const noexcept { return members_; }
  std::size_t size() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }

  bool contains(ReplicaId id) const noexcept {
    return std::binary_search(members_.begin(), members_.end(), id);
  }

  /// True iff the two quorums share at least one replica. O(|a| + |b|).
  bool intersects(const Quorum& other) const noexcept {
    auto a = members_.begin();
    auto b = other.members_.begin();
    while (a != members_.end() && b != other.members_.end()) {
      if (*a == *b) return true;
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
    return false;
  }

  /// True iff every member of this quorum is a member of other.
  bool subset_of(const Quorum& other) const noexcept {
    return std::includes(other.members_.begin(), other.members_.end(),
                         members_.begin(), members_.end());
  }

  friend bool operator==(const Quorum&, const Quorum&) = default;
  friend auto operator<=>(const Quorum& a, const Quorum& b) {
    return std::lexicographical_compare_three_way(
        a.members_.begin(), a.members_.end(), b.members_.begin(),
        b.members_.end());
  }

  /// "{0, 3, 7}" — for test failure messages and example output.
  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(members_[i]);
    }
    out += "}";
    return out;
  }

 private:
  std::vector<ReplicaId> members_;
};

/// The set of currently-crashed replicas of a system of fixed size n.
/// Fail-stop per the paper's model: a failed replica answers nothing.
class FailureSet {
 public:
  FailureSet() = default;
  explicit FailureSet(std::size_t universe_size) : failed_(universe_size, false) {}

  std::size_t universe_size() const noexcept { return failed_.size(); }

  bool is_failed(ReplicaId id) const noexcept {
    return id < failed_.size() && failed_[id];
  }
  bool is_alive(ReplicaId id) const noexcept { return !is_failed(id); }

  void fail(ReplicaId id) {
    if (id >= failed_.size()) failed_.resize(id + 1, false);
    failed_[id] = true;
  }
  void recover(ReplicaId id) {
    if (id < failed_.size()) failed_[id] = false;
  }

  std::size_t failed_count() const noexcept {
    return static_cast<std::size_t>(
        std::count(failed_.begin(), failed_.end(), true));
  }
  std::size_t alive_count() const noexcept {
    return failed_.size() - failed_count();
  }

  /// True iff every member of q is alive (q can be assembled as-is).
  bool all_alive(const Quorum& q) const noexcept {
    for (ReplicaId id : q.members()) {
      if (is_failed(id)) return false;
    }
    return true;
  }

 private:
  std::vector<bool> failed_;
};

}  // namespace atrcp
