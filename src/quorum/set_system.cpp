#include "quorum/set_system.hpp"

#include <stdexcept>

namespace atrcp {

SetSystem::SetSystem(std::size_t universe_size, std::vector<Quorum> sets)
    : universe_size_(universe_size), sets_(std::move(sets)) {
  for (const Quorum& q : sets_) {
    for (ReplicaId id : q.members()) {
      if (id >= universe_size_) {
        throw std::invalid_argument(
            "SetSystem: quorum member outside universe");
      }
    }
  }
}

bool SetSystem::is_quorum_system() const {
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t j = i + 1; j < sets_.size(); ++j) {
      if (!sets_[i].intersects(sets_[j])) return false;
    }
    if (sets_[i].empty()) return false;  // an empty set intersects nothing
  }
  return true;
}

bool SetSystem::is_coterie() const {
  if (!is_quorum_system()) return false;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t j = 0; j < sets_.size(); ++j) {
      if (i == j) continue;
      // Minimality: no distinct set may contain another. Equal duplicates
      // also violate it (S ⊆ R with S != R index-wise but equal contents is
      // tolerated only if they are the same set; we reject duplicates too,
      // which keeps strategies well-defined).
      if (sets_[i].subset_of(sets_[j])) return false;
    }
  }
  return true;
}

std::size_t SetSystem::min_set_size() const {
  if (sets_.empty()) throw std::logic_error("min_set_size of empty system");
  std::size_t best = sets_.front().size();
  for (const Quorum& q : sets_) best = std::min(best, q.size());
  return best;
}

std::size_t SetSystem::max_set_size() const {
  if (sets_.empty()) throw std::logic_error("max_set_size of empty system");
  std::size_t best = sets_.front().size();
  for (const Quorum& q : sets_) best = std::max(best, q.size());
  return best;
}

Bicoterie::Bicoterie(std::size_t universe_size,
                     std::vector<Quorum> read_quorums,
                     std::vector<Quorum> write_quorums)
    : reads_(universe_size, std::move(read_quorums)),
      writes_(universe_size, std::move(write_quorums)) {}

bool Bicoterie::intersection_holds() const {
  for (const Quorum& r : reads_.sets()) {
    for (const Quorum& w : writes_.sets()) {
      if (!r.intersects(w)) return false;
    }
  }
  return true;
}

}  // namespace atrcp
