// Availability of quorum systems under i.i.d. replica failures.
//
// Following the paper's §3.2 model: every replica is independently alive
// with probability p (Peleg–Wool [12] motivates p > 1/2). The availability
// of an operation is the probability that at least one of its quorums is
// fully alive.
//
// Three evaluators, strongest to cheapest:
//  * exact_availability      — exhaustive 2^n enumeration, n <= 24. Oracle.
//  * monte_carlo_availability — sampling; works for any n and also for
//    protocols whose quorum sets are implicit (via the predicate overload).
//  * closed forms             — per protocol, in src/core and src/protocols.
// Tests tie all three together.
#pragma once

#include <cstddef>
#include <functional>

#include "quorum/set_system.hpp"
#include "quorum/types.hpp"
#include "util/rng.hpp"

namespace atrcp {

/// Exhaustive availability: sums P(config) over all 2^n alive/failed
/// configurations in which some set is fully alive. Throws
/// std::invalid_argument if universe_size > 24 (cost is 2^n * m/64).
double exact_availability(const SetSystem& system, double p);

/// Monte-Carlo estimate with `trials` sampled failure configurations.
double monte_carlo_availability(const SetSystem& system, double p,
                                std::size_t trials, Rng& rng);

/// Monte-Carlo estimate for protocols with implicit quorum sets: the
/// predicate receives a sampled FailureSet and reports whether the
/// operation could still assemble a quorum.
double monte_carlo_availability(
    std::size_t universe_size, double p, std::size_t trials, Rng& rng,
    const std::function<bool(const FailureSet&)>& can_assemble);

/// Draw a failure configuration: each replica fails independently with
/// probability 1-p.
FailureSet sample_failures(std::size_t universe_size, double p, Rng& rng);

}  // namespace atrcp
