// Composition (recursive construction) of quorum systems — the algebra
// underlying both Kumar's HQC [8] and the arbitrary protocol.
//
// Given an OUTER set system over k abstract elements and one INNER set
// system per element (over disjoint replica universes), the composite
// system's quorums are: pick an outer set, then one inner quorum from every
// element it contains, and take the union.
//
// Classic facts, all executable here and verified in the tests:
//  * composing quorum systems yields a quorum system iff the outer and
//    inner systems are quorum systems (intersection is inherited);
//  * HQC of depth d  ==  majority-of-3 composed with itself d times;
//  * the arbitrary protocol's READ system is the composition of the
//    "all-of-k" outer system with per-level singleton systems, and its
//    WRITE system composes the "any-one-of-k" outer system with per-level
//    "all members" systems — which is why m(R) multiplies and m(W) adds.
#pragma once

#include <vector>

#include "quorum/set_system.hpp"

namespace atrcp {

/// Composes `outer` (universe size k) with `inner[0..k)`. The inner systems
/// are re-based onto one combined universe: inner i occupies the id range
/// [offset_i, offset_i + inner[i].universe_size()), offsets assigned in
/// order. Throws std::invalid_argument if outer.universe_size() !=
/// inner.size().
///
/// The composite has Π (over each outer set S) of Π_{i in S} m_i quorums,
/// i.e. it enumerates every choice; callers should keep sizes modest (this
/// is an analysis/verification tool, not a hot path). `limit` bounds the
/// number of generated sets (std::length_error beyond it).
SetSystem compose(const SetSystem& outer,
                  const std::vector<SetSystem>& inner,
                  std::size_t limit = 1u << 20);

/// The k-element set system with a single set {0..k-1} ("all of k").
SetSystem all_of(std::size_t k);

/// The k singleton sets {0} .. {k-1} ("any one of k").
SetSystem one_of(std::size_t k);

/// All ceil((k+1)/2)-subsets of [0,k) (simple majority).
SetSystem majority_of(std::size_t k);

/// HQC's read/write system of the given depth built purely by composition:
/// depth 0 is one replica; depth d+1 composes `need`-of-3 over three copies
/// of depth d. (need = 2 reproduces the paper's HQC instantiation.)
SetSystem hqc_by_composition(std::uint32_t depth, std::uint32_t need = 2,
                             std::size_t limit = 1u << 20);

/// All `need`-subsets of {0,1,2} — the per-level HQC quorum.
SetSystem need_of_three(std::uint32_t need);

}  // namespace atrcp
