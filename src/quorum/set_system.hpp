// Set systems, quorum systems, coteries and bicoteries — Definitions 2.1-2.3
// of the paper, as executable predicates over explicit quorum collections.
//
// These are used both as building blocks (the arbitrary protocol's read and
// write quorum sets form a bicoterie) and as test oracles (property tests
// enumerate quorums of randomized trees and verify the definitions hold).
#pragma once

#include <cstddef>
#include <vector>

#include "quorum/types.hpp"

namespace atrcp {

/// A collection of subsets of a universe U = [0, universe_size) —
/// Definition 2.1's "set system". Invariant: every member id < universe_size.
class SetSystem {
 public:
  SetSystem(std::size_t universe_size, std::vector<Quorum> sets);

  std::size_t universe_size() const noexcept { return universe_size_; }
  const std::vector<Quorum>& sets() const noexcept { return sets_; }
  std::size_t set_count() const noexcept { return sets_.size(); }

  /// Definition 2.1: every pair of sets intersects.
  bool is_quorum_system() const;

  /// Definition 2.2: quorum system with minimality (no set contains another).
  bool is_coterie() const;

  /// Size of the smallest set; Naor–Wool: load >= 1/c(S) where c(S) is the
  /// smallest quorum size, so this bounds the best achievable load.
  std::size_t min_set_size() const;
  std::size_t max_set_size() const;

 private:
  std::size_t universe_size_;
  std::vector<Quorum> sets_;
};

/// Definition 2.3: separate read and write quorum sets where every read
/// quorum intersects every write quorum.
class Bicoterie {
 public:
  Bicoterie(std::size_t universe_size, std::vector<Quorum> read_quorums,
            std::vector<Quorum> write_quorums);

  std::size_t universe_size() const noexcept { return reads_.universe_size(); }
  const SetSystem& reads() const noexcept { return reads_; }
  const SetSystem& writes() const noexcept { return writes_; }

  /// The defining property: R ∩ W != ∅ for all R in reads, W in writes.
  bool intersection_holds() const;

 private:
  SetSystem reads_;
  SetSystem writes_;
};

}  // namespace atrcp
