#include "quorum/strategy.hpp"

#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

Strategy::Strategy(std::vector<double> weights) : weights_(std::move(weights)) {
  if (weights_.empty()) {
    throw std::invalid_argument("Strategy: needs at least one set");
  }
  double total = 0.0;
  for (double w : weights_) {
    if (w < 0.0) throw std::invalid_argument("Strategy: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Strategy: weights sum to zero");
  }
  for (double& w : weights_) w /= total;
}

Strategy Strategy::uniform(std::size_t set_count) {
  if (set_count == 0) {
    throw std::invalid_argument("Strategy::uniform: set_count must be > 0");
  }
  return Strategy(std::vector<double>(set_count, 1.0));
}

std::size_t Strategy::sample(Rng& rng) const {
  double x = rng.uniform();
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    x -= weights_[j];
    if (x < 0.0) return j;
  }
  return weights_.size() - 1;  // guard against accumulated rounding
}

std::vector<double> induced_loads(const SetSystem& system,
                                  const Strategy& strategy) {
  if (strategy.set_count() != system.set_count()) {
    throw std::invalid_argument("induced_loads: strategy/system size mismatch");
  }
  std::vector<double> loads(system.universe_size(), 0.0);
  for (std::size_t j = 0; j < system.set_count(); ++j) {
    const double w = strategy.weights()[j];
    for (ReplicaId id : system.sets()[j].members()) loads[id] += w;
  }
  return loads;
}

double strategy_load(const SetSystem& system, const Strategy& strategy) {
  const auto loads = induced_loads(system, strategy);
  double max_load = 0.0;
  for (double l : loads) max_load = std::max(max_load, l);
  return max_load;
}

bool certifies_lower_bound(const SetSystem& system,
                           const std::vector<double>& y, double load,
                           double tol) {
  if (y.size() != system.universe_size()) return false;
  double total = 0.0;
  for (double yi : y) {
    if (yi < -tol || yi > 1.0 + tol) return false;
    total += yi;
  }
  if (std::abs(total - 1.0) > tol) return false;
  for (const Quorum& s : system.sets()) {
    double ys = 0.0;
    for (ReplicaId id : s.members()) ys += y[id];
    if (ys < load - tol) return false;
  }
  return true;
}

std::vector<double> empirical_loads(const SetSystem& system,
                                    const Strategy& strategy,
                                    std::size_t samples, Rng& rng) {
  if (samples == 0) {
    throw std::invalid_argument("empirical_loads: samples must be > 0");
  }
  std::vector<std::size_t> hits(system.universe_size(), 0);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t j = strategy.sample(rng);
    for (ReplicaId id : system.sets()[j].members()) ++hits[id];
  }
  std::vector<double> loads(system.universe_size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    loads[i] = static_cast<double>(hits[i]) / static_cast<double>(samples);
  }
  return loads;
}

}  // namespace atrcp
