#include "replica/store.hpp"

#include <algorithm>

namespace atrcp {

std::optional<VersionedValue> VersionedStore::get(Key key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

Timestamp VersionedStore::timestamp_of(Key key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? kInitialTimestamp : it->second.timestamp;
}

std::vector<Key> VersionedStore::keys() const {
  std::vector<Key> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

bool VersionedStore::apply(Key key, Value value, Timestamp ts) {
  auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted && !ts.is_newer_than(it->second.timestamp)) return false;
  it->second.value = std::move(value);
  it->second.timestamp = ts;
  return true;
}

}  // namespace atrcp
