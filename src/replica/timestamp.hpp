// Timestamps for replicated data (§2.2): a version number plus the SID of
// the writing site. A read returns the value whose timestamp has the
// HIGHEST version number and, among equals, the LOWEST site identifier —
// exactly the paper's tie-break.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "sim/network.hpp"

namespace atrcp {

struct Timestamp {
  std::uint64_t version = 0;
  SiteId sid = 0;

  /// True iff this timestamp wins over `other` under the paper's order:
  /// higher version first, lower SID breaking ties.
  bool is_newer_than(const Timestamp& other) const noexcept {
    if (version != other.version) return version > other.version;
    return sid < other.sid;
  }

  friend bool operator==(const Timestamp&, const Timestamp&) = default;

  std::string to_string() const {
    return "v" + std::to_string(version) + "@" + std::to_string(sid);
  }
};

/// The zero timestamp every replica starts from (never newer than any
/// written timestamp because written versions start at 1).
inline constexpr Timestamp kInitialTimestamp{0, 0};

}  // namespace atrcp
