// The wire protocol between transaction coordinators and replica servers.
//
// Four exchanges, mirroring the paper's operation structure (§2.2, §3.2):
//  * VersionRequest/Reply — a write first learns the highest version number
//    from a read quorum, then increments it.
//  * ReadRequest/Reply    — a read fetches value+timestamp from every read
//    quorum member and keeps the newest.
//  * Prepare/Vote, Commit/Ack, Abort/Ack — the two-phase commit executed at
//    the end of every transaction that contains writes; a Prepare carries
//    the writes destined for that participant.
//
// Every request carries an op_id so late or duplicated replies can be
// matched to (or discarded by) the right pending operation.
#pragma once

#include <cstdint>
#include <vector>

#include "replica/store.hpp"
#include "sim/network.hpp"

namespace atrcp {

using OpId = std::uint64_t;
using TxnId = std::uint64_t;

struct VersionRequest final : MessageBody {
  OpId op_id = 0;
  Key key = 0;
};

struct VersionReply final : MessageBody {
  OpId op_id = 0;
  Key key = 0;
  Timestamp timestamp;
};

struct ReadRequest final : MessageBody {
  OpId op_id = 0;
  Key key = 0;
};

struct ReadReply final : MessageBody {
  OpId op_id = 0;
  Key key = 0;
  bool has_value = false;
  Value value;
  Timestamp timestamp;

  std::size_t modelled_bytes() const override {
    return kEnvelopeBytes + value.size();
  }
};

/// Liveness probe (heartbeat detector -> replica); answered with PongReply
/// by any up replica.
struct PingRequest final : MessageBody {
  std::uint64_t sequence = 0;
};

struct PongReply final : MessageBody {
  std::uint64_t sequence = 0;
};

/// Direct timestamped install, used by read repair: safe without 2PC
/// because apply() is idempotent and monotone in the timestamp (it can only
/// move a replica TOWARD the latest committed value).
struct ApplyRequest final : MessageBody {
  Key key = 0;
  Value value;
  Timestamp timestamp;

  std::size_t modelled_bytes() const override {
    return kEnvelopeBytes + value.size();
  }
};

/// One write as staged on a participant.
struct StagedWrite {
  Key key = 0;
  Value value;
  Timestamp timestamp;
};

struct PrepareRequest final : MessageBody {
  TxnId txn_id = 0;
  std::vector<StagedWrite> writes;

  std::size_t modelled_bytes() const override {
    // Envelope plus key+timestamp (24 bytes modelled) and payload per write.
    std::size_t bytes = kEnvelopeBytes;
    for (const StagedWrite& write : writes) bytes += 24 + write.value.size();
    return bytes;
  }
};

struct PrepareVote final : MessageBody {
  TxnId txn_id = 0;
  bool yes = false;
};

struct CommitRequest final : MessageBody {
  TxnId txn_id = 0;
};

struct CommitAck final : MessageBody {
  TxnId txn_id = 0;
};

struct AbortRequest final : MessageBody {
  TxnId txn_id = 0;
};

struct AbortAck final : MessageBody {
  TxnId txn_id = 0;
};

// -- reconfiguration (src/reconfig) ------------------------------------------
//
// The epoch/view-change exchanges the ReconfigManager drives while moving
// the cluster from tree T_old (epoch e) to tree T_new (epoch e+1) without
// stopping the world (docs/RECONFIG.md). Replicas record the highest epoch
// seen per exchange so retransmissions stay idempotent.

/// Phase 1: announce epoch e+1. A replica durably records the announcement
/// and acks; the manager advances once the acked set satisfies a write
/// quorum of BOTH epochs.
struct EpochPrepareRequest final : MessageBody {
  std::uint64_t epoch = 0;
};

struct EpochPrepareAck final : MessageBody {
  std::uint64_t epoch = 0;
};

/// Phase 4: epoch e+1 is in force; old-epoch quorum rules may be dropped.
struct EpochCommitRequest final : MessageBody {
  std::uint64_t epoch = 0;
};

struct EpochCommitAck final : MessageBody {
  std::uint64_t epoch = 0;
};

/// State-sync read (phase 3): a replica answers with its entire store as
/// (key, value, timestamp) entries. The manager collects replies until the
/// respondents contain an old-epoch READ quorum — which, by the old
/// epoch's bicoterie property, has seen every committed write.
struct SnapshotRequest final : MessageBody {
  OpId op_id = 0;
};

struct SnapshotReply final : MessageBody {
  OpId op_id = 0;
  std::vector<StagedWrite> entries;

  std::size_t modelled_bytes() const override {
    std::size_t bytes = kEnvelopeBytes;
    for (const StagedWrite& entry : entries) bytes += 24 + entry.value.size();
    return bytes;
  }
};

/// State-sync install (phase 3): the merged per-key latest values, applied
/// through the timestamp-monotone store (idempotent, so retransmissions
/// and replays after a manager crash are safe).
struct SyncApplyRequest final : MessageBody {
  OpId op_id = 0;
  std::vector<StagedWrite> writes;

  std::size_t modelled_bytes() const override {
    std::size_t bytes = kEnvelopeBytes;
    for (const StagedWrite& write : writes) bytes += 24 + write.value.size();
    return bytes;
  }
};

struct SyncApplyAck final : MessageBody {
  OpId op_id = 0;
};

}  // namespace atrcp
