// The replica server — a site hosting one copy of the replicated data.
//
// Pure message-driven state machine over sim/network: answers version and
// read requests from its local VersionedStore and participates in two-phase
// commit. Prepared (voted-yes) transactions are held in a prepared-set that
// models a stable log: it survives crashes, so a participant that voted yes
// and then crashed still applies the writes when the retransmitted commit
// arrives after recovery — the standard 2PC stable-storage requirement.
//
// The server itself never initiates messages; coordinators (src/txn) drive
// all exchanges.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "replica/messages.hpp"
#include "replica/store.hpp"
#include "sim/network.hpp"

namespace atrcp {

class Counter;
class EventBus;
class MetricsRegistry;

class ReplicaServer final : public SiteHandler {
 public:
  /// The server must be registered with the network by the caller (the
  /// caller owns site-id assignment): construct, then
  /// id = network.add_site(server); server.set_site(id).
  explicit ReplicaServer(Network& network);

  void set_site(SiteId site) noexcept { site_ = site; }
  SiteId site() const noexcept { return site_; }

  /// Attaches fleet-wide replica counters (nullptr detaches):
  /// replica.{reads_served,versions_served,writes_staged,writes_applied,
  /// aborts_seen,repairs_applied}. Every server of a cluster shares the
  /// same counters, so the registry reports aggregate replica work; the
  /// per-server tallies below remain available for per-replica shares.
  void set_metrics(MetricsRegistry* registry);

  /// Attaches the flight recorder (nullptr detaches): request handling and
  /// version installs publish kReplica* events stamped with this site. The
  /// bus must outlive the server or be detached first.
  void set_event_bus(EventBus* bus) noexcept { bus_ = bus; }

  const VersionedStore& store() const noexcept { return store_; }
  VersionedStore& store() noexcept { return store_; }

  /// Number of transactions currently in the prepared (voted yes, awaiting
  /// decision) state.
  std::size_t prepared_count() const noexcept { return prepared_.size(); }

  /// Highest configuration epoch announced (EpochPrepare) / in force
  /// (EpochCommit) at this replica; 0 before any reconfiguration.
  std::uint64_t prepared_epoch() const noexcept { return prepared_epoch_; }
  std::uint64_t committed_epoch() const noexcept { return committed_epoch_; }

  void on_message(const Message& message) override;

  // -- statistics -------------------------------------------------------------
  std::uint64_t messages_received() const noexcept {
    return messages_received_;
  }
  std::uint64_t reads_served() const noexcept { return reads_served_; }
  std::uint64_t versions_served() const noexcept { return versions_served_; }
  std::uint64_t commits_applied() const noexcept { return commits_applied_; }
  std::uint64_t aborts_seen() const noexcept { return aborts_seen_; }
  std::uint64_t repairs_applied() const noexcept { return repairs_applied_; }

 private:
  void record(std::uint8_t kind, TxnId txn, std::uint64_t key);

  void handle(const VersionRequest& request, SiteId from);
  void handle(const ReadRequest& request, SiteId from);
  void handle(const PrepareRequest& request, SiteId from);
  void handle(const CommitRequest& request, SiteId from);
  void handle(const AbortRequest& request, SiteId from);
  void handle(const EpochPrepareRequest& request, SiteId from);
  void handle(const EpochCommitRequest& request, SiteId from);
  void handle(const SnapshotRequest& request, SiteId from);
  void handle(const SyncApplyRequest& request, SiteId from);

  Network& network_;
  SiteId site_ = 0;
  EventBus* bus_ = nullptr;
  VersionedStore store_;
  /// txn -> staged writes; models the stable 2PC log.
  std::unordered_map<TxnId, std::vector<StagedWrite>> prepared_;
  /// Decisions already processed, so duplicated commit/abort retransmissions
  /// stay idempotent (true = committed).
  std::unordered_map<TxnId, bool> decided_;
  /// Reconfiguration epochs, modelled as stable storage (survive crashes
  /// like prepared_ does): highest announced / highest committed.
  std::uint64_t prepared_epoch_ = 0;
  std::uint64_t committed_epoch_ = 0;

  std::uint64_t messages_received_ = 0;
  std::uint64_t reads_served_ = 0;
  std::uint64_t versions_served_ = 0;
  std::uint64_t commits_applied_ = 0;
  std::uint64_t aborts_seen_ = 0;
  std::uint64_t repairs_applied_ = 0;

  /// Registry-owned counters; null while detached.
  Counter* reads_obs_ = nullptr;
  Counter* versions_obs_ = nullptr;
  Counter* staged_obs_ = nullptr;
  Counter* applied_obs_ = nullptr;
  Counter* aborts_obs_ = nullptr;
  Counter* repairs_obs_ = nullptr;
};

}  // namespace atrcp
