#include "replica/server.hpp"

#include <memory>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace atrcp {

ReplicaServer::ReplicaServer(Network& network) : network_(network) {}

void ReplicaServer::record(std::uint8_t kind, TxnId txn, std::uint64_t key) {
  if (bus_ == nullptr) return;
  Event event;
  event.time = network_.scheduler().now();
  event.kind = static_cast<EventKind>(kind);
  event.site = site_;
  event.txn_id = txn;
  event.label = "key " + std::to_string(key);
  bus_->publish(std::move(event));
}

void ReplicaServer::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    reads_obs_ = versions_obs_ = staged_obs_ = applied_obs_ = aborts_obs_ =
        repairs_obs_ = nullptr;
    return;
  }
  reads_obs_ = &registry->counter("replica.reads_served");
  versions_obs_ = &registry->counter("replica.versions_served");
  staged_obs_ = &registry->counter("replica.writes_staged");
  applied_obs_ = &registry->counter("replica.writes_applied");
  aborts_obs_ = &registry->counter("replica.aborts_seen");
  repairs_obs_ = &registry->counter("replica.repairs_applied");
}

void ReplicaServer::on_message(const Message& message) {
  ATRCP_CHECK(message.body != nullptr);
  ++messages_received_;
  const MessageBody& body = *message.body;
  if (const auto* m = dynamic_cast<const VersionRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const ReadRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const PrepareRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const CommitRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const AbortRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const ApplyRequest*>(&body)) {
    if (store_.apply(m->key, m->value, m->timestamp)) {
      ++repairs_applied_;
      if (repairs_obs_ != nullptr) repairs_obs_->inc();
      record(static_cast<std::uint8_t>(EventKind::kReplicaRepair), 0, m->key);
    }
  } else if (const auto* m = dynamic_cast<const PingRequest*>(&body)) {
    auto pong = network_.make_body<PongReply>();
    pong->sequence = m->sequence;
    network_.send(site_, message.from, std::move(pong));
  } else if (const auto* m = dynamic_cast<const EpochPrepareRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const EpochCommitRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const SnapshotRequest*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const SyncApplyRequest*>(&body)) {
    handle(*m, message.from);
  }
  // Unknown bodies (e.g. replies echoed to the wrong site) are ignored.
}

void ReplicaServer::handle(const VersionRequest& request, SiteId from) {
  ++versions_served_;
  if (versions_obs_ != nullptr) versions_obs_->inc();
  record(static_cast<std::uint8_t>(EventKind::kReplicaVersion), 0,
         request.key);
  auto reply = network_.make_body<VersionReply>();
  reply->op_id = request.op_id;
  reply->key = request.key;
  reply->timestamp = store_.timestamp_of(request.key);
  network_.send(site_, from, std::move(reply));
}

void ReplicaServer::handle(const ReadRequest& request, SiteId from) {
  ++reads_served_;
  if (reads_obs_ != nullptr) reads_obs_->inc();
  record(static_cast<std::uint8_t>(EventKind::kReplicaRead), 0, request.key);
  auto reply = network_.make_body<ReadReply>();
  reply->op_id = request.op_id;
  reply->key = request.key;
  if (const auto entry = store_.get(request.key)) {
    reply->has_value = true;
    reply->value = entry->value;
    reply->timestamp = entry->timestamp;
  } else {
    reply->timestamp = kInitialTimestamp;
  }
  network_.send(site_, from, std::move(reply));
}

void ReplicaServer::handle(const PrepareRequest& request, SiteId from) {
  auto vote = network_.make_body<PrepareVote>();
  vote->txn_id = request.txn_id;
  if (const auto decided = decided_.find(request.txn_id);
      decided != decided_.end()) {
    // A retransmitted prepare for an already-decided transaction: repeat
    // the yes vote if it committed (coordinator may have missed it).
    vote->yes = decided->second;
  } else {
    // This simulator has no local integrity constraints that could force a
    // no-vote; a participant votes yes iff it can stage the writes, which
    // always succeeds while it is up (a down site simply never replies and
    // the coordinator counts it as a no).
    prepared_[request.txn_id] = request.writes;
    if (staged_obs_ != nullptr) staged_obs_->inc(request.writes.size());
    if (bus_ != nullptr && !request.writes.empty()) {
      record(static_cast<std::uint8_t>(EventKind::kReplicaStage),
             request.txn_id, request.writes.front().key);
    }
    vote->yes = true;
  }
  network_.send(site_, from, std::move(vote));
}

void ReplicaServer::handle(const CommitRequest& request, SiteId from) {
  const auto it = prepared_.find(request.txn_id);
  if (it != prepared_.end()) {
    for (const StagedWrite& write : it->second) {
      store_.apply(write.key, write.value, write.timestamp);
    }
    if (applied_obs_ != nullptr) applied_obs_->inc(it->second.size());
    if (bus_ != nullptr && !it->second.empty()) {
      record(static_cast<std::uint8_t>(EventKind::kReplicaApply),
             request.txn_id, it->second.front().key);
    }
    prepared_.erase(it);
    decided_[request.txn_id] = true;
    ++commits_applied_;
  }
  // Ack even for duplicates so coordinator retransmissions terminate.
  auto ack = network_.make_body<CommitAck>();
  ack->txn_id = request.txn_id;
  network_.send(site_, from, std::move(ack));
}

void ReplicaServer::handle(const EpochPrepareRequest& request, SiteId from) {
  // Durably record the announcement (monotone: retransmissions and late
  // duplicates of an older transition are no-ops) and ack.
  if (request.epoch > prepared_epoch_) prepared_epoch_ = request.epoch;
  auto ack = network_.make_body<EpochPrepareAck>();
  ack->epoch = request.epoch;
  network_.send(site_, from, std::move(ack));
}

void ReplicaServer::handle(const EpochCommitRequest& request, SiteId from) {
  if (request.epoch > committed_epoch_) committed_epoch_ = request.epoch;
  if (request.epoch > prepared_epoch_) prepared_epoch_ = request.epoch;
  auto ack = network_.make_body<EpochCommitAck>();
  ack->epoch = request.epoch;
  network_.send(site_, from, std::move(ack));
}

void ReplicaServer::handle(const SnapshotRequest& request, SiteId from) {
  auto reply = network_.make_body<SnapshotReply>();
  reply->op_id = request.op_id;
  for (const Key key : store_.keys()) {
    const auto entry = store_.get(key);
    reply->entries.push_back(StagedWrite{key, entry->value, entry->timestamp});
  }
  network_.send(site_, from, std::move(reply));
}

void ReplicaServer::handle(const SyncApplyRequest& request, SiteId from) {
  for (const StagedWrite& write : request.writes) {
    if (store_.apply(write.key, write.value, write.timestamp)) {
      ++repairs_applied_;
      if (repairs_obs_ != nullptr) repairs_obs_->inc();
    }
  }
  auto ack = network_.make_body<SyncApplyAck>();
  ack->op_id = request.op_id;
  network_.send(site_, from, std::move(ack));
}

void ReplicaServer::handle(const AbortRequest& request, SiteId from) {
  const auto it = prepared_.find(request.txn_id);
  if (it != prepared_.end()) {
    if (bus_ != nullptr && !it->second.empty()) {
      record(static_cast<std::uint8_t>(EventKind::kReplicaAbort),
             request.txn_id, it->second.front().key);
    }
    prepared_.erase(it);
    decided_[request.txn_id] = false;
    ++aborts_seen_;
    if (aborts_obs_ != nullptr) aborts_obs_->inc();
  }
  auto ack = network_.make_body<AbortAck>();
  ack->txn_id = request.txn_id;
  network_.send(site_, from, std::move(ack));
}

}  // namespace atrcp
