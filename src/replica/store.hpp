// A replica's local versioned key-value store.
//
// Values carry the paper's (version, SID) timestamps; apply() only installs
// a write whose timestamp is newer than what is stored, making replays and
// out-of-order delivery harmless (writes are idempotent by timestamp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "replica/timestamp.hpp"

namespace atrcp {

using Key = std::uint64_t;
using Value = std::string;

struct VersionedValue {
  Value value;
  Timestamp timestamp;
};

class VersionedStore {
 public:
  /// Current value+timestamp of key, or nullopt if never written.
  std::optional<VersionedValue> get(Key key) const;

  /// Timestamp of key; kInitialTimestamp if never written.
  Timestamp timestamp_of(Key key) const;

  /// Installs (value, ts) iff ts is newer than the stored timestamp.
  /// Returns true if the store changed.
  bool apply(Key key, Value value, Timestamp ts);

  std::size_t size() const noexcept { return entries_.size(); }

  /// All keys currently stored, in ascending order (for state transfer
  /// during reconfiguration and for tests).
  std::vector<Key> keys() const;

 private:
  std::unordered_map<Key, VersionedValue> entries_;
};

}  // namespace atrcp
