// Parallel run driver for the embarrassingly parallel sweeps the benches
// and the schedule explorer run: seed sweeps, parameter-point grids, the
// protocol zoo. The paper's whole evaluation decomposes into independent
// (configuration, seed) jobs — each job builds its own Cluster from its own
// SplitMix64 stream and touches no shared state (src/ has no mutable
// globals; the audit lives in docs/ARCHITECTURE.md#determinism) — so the
// driver can fan jobs out across std::jthread workers and still produce
// bit-identical results.
//
// Determinism contract: job i's work depends only on i (never on which
// worker ran it or in what order), and results are merged in job-index
// order after all workers join. Therefore the aggregate output of
// `--jobs N` is byte-identical to `--jobs 1` for every N; `--jobs 1` does
// not spawn threads at all and is exactly the pre-driver serial code path.
//
// Scheduling: jobs are dealt round-robin into one cache-line-padded shard
// (deque) per worker; a worker claims a small CHUNK of indices from its own
// shard front and, when empty, steals a chunk from the back of the fullest
// remaining shard. Victim selection reads per-shard approximate sizes
// (relaxed atomics) without taking locks; the authoritative all-empty check
// before a worker exits still walks the shards under their mutexes, so no
// job can be orphaned by a stale size. Stealing only changes WHO runs a
// job, never its input or where its result lands, so the schedule is free
// to be timing-dependent while the output stays deterministic.
//
// The pool never spawns more threads than the machine has hardware
// threads: for CPU-bound sweeps, oversubscription only adds context-switch
// and cache-contention overhead (the `--jobs 4` > serial regression on
// 2-core hosts tracked in EXPERIMENTS.md E20). `jobs()` still reports the
// requested count — the clamp affects scheduling, never output.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace atrcp {

/// Worker count used when the caller does not pass `--jobs`:
/// std::thread::hardware_concurrency(), clamped to at least 1. When the
/// implementation cannot determine the topology (hardware_concurrency()
/// == 0, allowed by the standard) falls back to 2: a small multicore is
/// the sane modern guess, and the determinism contract makes the worker
/// count output-invisible anyway.
std::size_t default_jobs();

/// Per-run scheduler counters, summed over workers after the join. These
/// are the "perf counters" for root-causing scaling bugs: a healthy run
/// has chunk_claims ≪ jobs_run (claims amortized over chunks) and a small
/// steal share; a run where steals ≈ jobs_run means the deal was skewed or
/// the grain too fine.
struct RunStats {
  std::size_t workers = 0;       ///< threads actually used (after clamping)
  std::size_t jobs_run = 0;      ///< total jobs executed (== count)
  std::size_t chunk_claims = 0;  ///< lock acquisitions that yielded work
  std::size_t steals = 0;        ///< jobs obtained from another shard
};

class RunDriver {
 public:
  /// jobs == 0 selects default_jobs().
  explicit RunDriver(std::size_t jobs = 0);

  std::size_t jobs() const noexcept { return jobs_; }

  /// Runs fn(0) .. fn(count - 1), each exactly once, across the worker
  /// pool; returns only after every job finished. With jobs() == 1 (or
  /// count <= 1) everything runs inline on the calling thread — no threads
  /// are created and the call is exactly a serial for-loop. If jobs throw,
  /// the remaining jobs still run and the first exception (by job index)
  /// is rethrown after all workers join. When `stats` is non-null it is
  /// overwritten with this run's scheduler counters.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn,
                RunStats* stats = nullptr) const;

  /// for_each, collecting fn(i) into slot i of the returned vector — the
  /// index-ordered merge every sweep builds on. R must be default
  /// constructible and movable.
  template <typename R>
  std::vector<R> map(std::size_t count,
                     const std::function<R(std::size_t)>& fn,
                     RunStats* stats = nullptr) const {
    std::vector<R> out(count);
    for_each(count, [&out, &fn](std::size_t i) { out[i] = fn(i); }, stats);
    return out;
  }

  /// map for the common case of jobs that render a chunk of report text;
  /// concatenating the result reproduces the serial output byte for byte.
  std::vector<std::string> map_text(
      std::size_t count,
      const std::function<std::string(std::size_t)>& fn) const {
    return map<std::string>(count, fn);
  }

 private:
  std::size_t jobs_ = 1;
};

/// Largest worker count parse_jobs_value accepts; anything bigger is a
/// typo, not a machine.
inline constexpr std::size_t kMaxJobs = 4096;

/// Parses a `--jobs` value. Returns the count in [1, kMaxJobs] on success;
/// returns 0 and (when `error` is non-null) fills in a human-readable
/// reason on failure. Split out of parse_jobs_flag so the reject paths are
/// unit-testable without a death test.
std::size_t parse_jobs_value(std::string_view text, std::string* error);

/// Strips a trailing/leading/embedded `--jobs N` (or `--jobs=N`) from
/// argv and returns the parsed worker count (0 = not given -> returns
/// default_jobs()). argc is decremented for the consumed tokens so the
/// remaining argv can be handed to another parser (google-benchmark).
/// Invalid values (non-numeric, 0, > kMaxJobs, missing) abort with exit
/// code 2 and a specific message on stderr — a sweep silently falling back
/// to serial would defeat the flag.
std::size_t parse_jobs_flag(int& argc, char** argv);

}  // namespace atrcp
