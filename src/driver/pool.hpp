// Parallel run driver for the embarrassingly parallel sweeps the benches
// and the schedule explorer run: seed sweeps, parameter-point grids, the
// protocol zoo. The paper's whole evaluation decomposes into independent
// (configuration, seed) jobs — each job builds its own Cluster from its own
// SplitMix64 stream and touches no shared state (src/ has no mutable
// globals; the audit lives in docs/ARCHITECTURE.md#determinism) — so the
// driver can fan jobs out across std::jthread workers and still produce
// bit-identical results.
//
// Determinism contract: job i's work depends only on i (never on which
// worker ran it or in what order), and results are merged in job-index
// order after all workers join. Therefore the aggregate output of
// `--jobs N` is byte-identical to `--jobs 1` for every N; `--jobs 1` does
// not spawn threads at all and is exactly the pre-driver serial code path.
//
// Scheduling: jobs are dealt round-robin into one shard (deque) per worker;
// a worker drains its own shard front-to-back and, when empty, steals from
// the back of the fullest remaining shard. Stealing only changes WHO runs a
// job, never its input or where its result lands, so the schedule is free
// to be timing-dependent while the output stays deterministic.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace atrcp {

/// Worker count used when the caller does not pass `--jobs`:
/// std::thread::hardware_concurrency(), clamped to at least 1.
std::size_t default_jobs();

class RunDriver {
 public:
  /// jobs == 0 selects default_jobs().
  explicit RunDriver(std::size_t jobs = 0);

  std::size_t jobs() const noexcept { return jobs_; }

  /// Runs fn(0) .. fn(count - 1), each exactly once, across the worker
  /// pool; returns only after every job finished. With jobs() == 1 (or
  /// count <= 1) everything runs inline on the calling thread — no threads
  /// are created and the call is exactly a serial for-loop. If jobs throw,
  /// the remaining jobs still run and the first exception (by job index)
  /// is rethrown after all workers join.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& fn) const;

  /// for_each, collecting fn(i) into slot i of the returned vector — the
  /// index-ordered merge every sweep builds on. R must be default
  /// constructible and movable.
  template <typename R>
  std::vector<R> map(std::size_t count,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(count);
    for_each(count, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// map for the common case of jobs that render a chunk of report text;
  /// concatenating the result reproduces the serial output byte for byte.
  std::vector<std::string> map_text(
      std::size_t count,
      const std::function<std::string(std::size_t)>& fn) const {
    return map<std::string>(count, fn);
  }

 private:
  std::size_t jobs_ = 1;
};

/// Strips a trailing/leading/embedded `--jobs N` (or `--jobs=N`) from
/// argv and returns the parsed worker count (0 = not given -> returns
/// default_jobs()). argc is decremented for the consumed tokens so the
/// remaining argv can be handed to another parser (google-benchmark).
/// Invalid values (non-numeric, 0) abort with exit code 2 and a message on
/// stderr — a sweep silently falling back to serial would defeat the flag.
std::size_t parse_jobs_flag(int& argc, char** argv);

}  // namespace atrcp
