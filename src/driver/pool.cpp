#include "driver/pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string_view>
#include <thread>

namespace atrcp {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  // hardware_concurrency() == 0 means "topology unknown", not "one core".
  // Guess a small multicore so flagless runs still overlap work; the
  // determinism contract makes the choice output-invisible.
  return hw == 0 ? 2 : static_cast<std::size_t>(hw);
}

RunDriver::RunDriver(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

namespace {

// Sized manually instead of std::hardware_destructive_interference_size:
// the constant is 64 on every target we build for, and using the trait in
// an ABI-relevant position trips GCC's -Winterference-size.
constexpr std::size_t kCacheLine = 64;

/// One worker's job queue, padded to its own cache line(s) so the mutex
/// and deque heads of neighbouring shards never share a line. `approx`
/// mirrors queue.size() with relaxed stores so thieves can scan for the
/// fullest victim without touching any lock.
struct alignas(kCacheLine) Shard {
  std::mutex mutex;
  std::deque<std::size_t> queue;
  std::atomic<std::uint32_t> approx{0};

  /// Claims up to `grain` jobs from the front into `out` (owner path).
  std::size_t pop_chunk(std::size_t grain, std::size_t* out) {
    std::lock_guard lock(mutex);
    const std::size_t take = std::min(grain, queue.size());
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = queue.front();
      queue.pop_front();
    }
    approx.store(static_cast<std::uint32_t>(queue.size()),
                 std::memory_order_relaxed);
    return take;
  }

  /// Claims up to half the queue (capped at `grain`) from the back into
  /// `out` (thief path) — the classic split that keeps owner/thief
  /// contention to opposite ends of the deque.
  std::size_t steal_chunk(std::size_t grain, std::size_t* out) {
    std::lock_guard lock(mutex);
    const std::size_t half = (queue.size() + 1) / 2;
    const std::size_t take = std::min(grain, half);
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = queue.back();
      queue.pop_back();
    }
    approx.store(static_cast<std::uint32_t>(queue.size()),
                 std::memory_order_relaxed);
    return take;
  }

  std::size_t locked_size() {
    std::lock_guard lock(mutex);
    return queue.size();
  }
};

/// Per-worker counters on their own cache line — the whole point of the
/// driver's perf instrumentation is to not perturb what it measures.
struct alignas(kCacheLine) WorkerCounters {
  std::size_t jobs_run = 0;
  std::size_t chunk_claims = 0;
  std::size_t steals = 0;
};

/// Threads beyond the hardware's concurrency only add context switching
/// and cache contention for CPU-bound jobs; cap the pool there. With an
/// unknown topology (hw == 0) trust the caller's request.
std::size_t clamp_workers(std::size_t requested) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return requested;
  return std::min(requested, static_cast<std::size_t>(hw));
}

}  // namespace

void RunDriver::for_each(std::size_t count,
                         const std::function<void(std::size_t)>& fn,
                         RunStats* stats) const {
  if (stats != nullptr) *stats = RunStats{};
  if (count == 0) return;
  const std::size_t workers = std::min(clamp_workers(jobs_), count);
  if (jobs_ <= 1 || workers <= 1) {
    // The serial path: no threads, no queues — byte-for-byte the loop the
    // benches ran before the driver existed.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    if (stats != nullptr) {
      stats->workers = 1;
      stats->jobs_run = count;
      stats->chunk_claims = 1;
    }
    return;
  }

  // Chunk size: coarse enough that claim locks amortize over several jobs
  // (tiny analytic jobs were paying one lock round-trip each), fine enough
  // that stealing can still balance a skewed deal. Capped so huge sweeps
  // do not turn into a handful of unstealable slabs.
  const std::size_t grain =
      std::clamp<std::size_t>(count / (workers * 4), 1, 16);

  // Deal jobs round-robin so every shard starts with a near-equal slice of
  // the index space; uneven job costs are evened out by stealing below.
  std::vector<Shard> shards(workers);
  for (std::size_t i = 0; i < count; ++i) {
    shards[i % workers].queue.push_back(i);
  }
  for (Shard& shard : shards) {
    shard.approx.store(static_cast<std::uint32_t>(shard.queue.size()),
                       std::memory_order_relaxed);
  }
  std::vector<WorkerCounters> counters(workers);

  // First exception wins by JOB INDEX (not completion time) so a failing
  // sweep reports the same job no matter how the schedule interleaved.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_job = count;

  auto work = [&](std::size_t self) {
    WorkerCounters& mine = counters[self];
    std::size_t chunk[16];  // grain <= 16 by construction
    for (;;) {
      std::size_t got = shards[self].pop_chunk(grain, chunk);
      if (got == 0) {
        // Own shard drained: pick the fullest victim from the lock-free
        // approximate sizes, then fall back to an authoritative locked
        // scan before concluding everything is drained — a stale approx
        // of 0 must never orphan a job.
        std::size_t victim = workers;
        std::uint32_t victim_size = 0;
        for (std::size_t s = 0; s < workers; ++s) {
          if (s == self) continue;
          const std::uint32_t size =
              shards[s].approx.load(std::memory_order_relaxed);
          if (size > victim_size) {
            victim = s;
            victim_size = size;
          }
        }
        if (victim != workers) {
          got = shards[victim].steal_chunk(grain, chunk);
          if (got == 0) continue;  // lost the race; rescan
          mine.steals += got;
        } else {
          bool any = false;
          for (std::size_t s = 0; s < workers && !any; ++s) {
            any = shards[s].locked_size() > 0;
          }
          if (!any) return;  // everything everywhere claimed
          continue;
        }
      }
      mine.chunk_claims += 1;
      mine.jobs_run += got;
      for (std::size_t i = 0; i < got; ++i) {
        const std::size_t job = chunk[i];
        try {
          fn(job);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (job < first_error_job) {
            first_error_job = job;
            first_error = std::current_exception();
          }
        }
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(work, w);
    }
    work(0);  // the calling thread is worker 0
  }  // jthreads join here

  if (stats != nullptr) {
    stats->workers = workers;
    for (const WorkerCounters& c : counters) {
      stats->jobs_run += c.jobs_run;
      stats->chunk_claims += c.chunk_claims;
      stats->steals += c.steals;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t parse_jobs_value(std::string_view text, std::string* error) {
  auto fail = [error](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return std::size_t{0};
  };
  if (text.empty()) return fail("--jobs expects a value");
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return fail("--jobs expects a positive integer, got '" +
                  std::string(text) + "'");
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > kMaxJobs) {
      return fail("--jobs value '" + std::string(text) +
                  "' is out of range (max " + std::to_string(kMaxJobs) + ")");
    }
  }
  if (value == 0) return fail("--jobs must be at least 1, got 0");
  return value;
}

std::size_t parse_jobs_flag(int& argc, char** argv) {
  std::size_t jobs = 0;
  auto die = [](const std::string& why) {
    std::fprintf(stderr, "error: %s\n", why.c_str());
    std::exit(2);
  };

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    std::string error;
    if (arg == "--jobs") {
      if (i + 1 >= argc) die("--jobs expects a value");
      jobs = parse_jobs_value(argv[i + 1], &error);
      if (jobs == 0) die(error);
      ++i;  // consume the value token too
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = parse_jobs_value(arg.substr(7), &error);
      if (jobs == 0) die(error);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return jobs == 0 ? default_jobs() : jobs;
}

}  // namespace atrcp
