#include "driver/pool.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string_view>
#include <thread>

namespace atrcp {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

RunDriver::RunDriver(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

namespace {

/// One worker's job queue. Owner pops the front, thieves take the back —
/// the classic split that keeps owner/thief contention to the ends.
struct Shard {
  std::mutex mutex;
  std::deque<std::size_t> queue;

  bool pop_front(std::size_t* job) {
    std::lock_guard lock(mutex);
    if (queue.empty()) return false;
    *job = queue.front();
    queue.pop_front();
    return true;
  }

  bool steal_back(std::size_t* job) {
    std::lock_guard lock(mutex);
    if (queue.empty()) return false;
    *job = queue.back();
    queue.pop_back();
    return true;
  }

  std::size_t size() {
    std::lock_guard lock(mutex);
    return queue.size();
  }
};

}  // namespace

void RunDriver::for_each(std::size_t count,
                         const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min(jobs_, count);
  if (workers <= 1) {
    // The serial path: no threads, no queues — byte-for-byte the loop the
    // benches ran before the driver existed.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Deal jobs round-robin so every shard starts with a near-equal slice of
  // the index space; uneven job costs are evened out by stealing below.
  std::vector<Shard> shards(workers);
  for (std::size_t i = 0; i < count; ++i) {
    shards[i % workers].queue.push_back(i);
  }

  // First exception wins by JOB INDEX (not completion time) so a failing
  // sweep reports the same job no matter how the schedule interleaved.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_job = count;

  auto work = [&](std::size_t self) {
    for (;;) {
      std::size_t job;
      if (!shards[self].pop_front(&job)) {
        // Own shard drained: steal from the fullest remaining shard.
        std::size_t victim = workers;
        std::size_t victim_size = 0;
        for (std::size_t s = 0; s < workers; ++s) {
          if (s == self) continue;
          const std::size_t size = shards[s].size();
          if (size > victim_size) {
            victim = s;
            victim_size = size;
          }
        }
        if (victim == workers || !shards[victim].steal_back(&job)) {
          if (victim == workers) return;  // everything everywhere drained
          continue;  // lost the race for the victim's last job; rescan
        }
      }
      try {
        fn(job);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (job < first_error_job) {
          first_error_job = job;
          first_error = std::current_exception();
        }
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(work, w);
    }
    work(0);  // the calling thread is worker 0
  }  // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
}

std::size_t parse_jobs_flag(int& argc, char** argv) {
  std::size_t jobs = 0;

  auto parse_value = [](std::string_view text) -> std::size_t {
    if (text.empty()) return 0;
    std::size_t value = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return 0;
      value = value * 10 + static_cast<std::size_t>(c - '0');
      if (value > 4096) return 0;  // reject absurd counts along with garbage
    }
    return value;
  };
  auto die = [](const char* got) {
    std::fprintf(stderr, "error: --jobs expects a positive integer, got %s\n",
                 got == nullptr ? "(nothing)" : got);
    std::exit(2);
  };

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--jobs") {
      if (i + 1 >= argc) die(nullptr);
      jobs = parse_value(argv[i + 1]);
      if (jobs == 0) die(argv[i + 1]);
      ++i;  // consume the value token too
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = parse_value(arg.substr(7));
      if (jobs == 0) die(argv[i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return jobs == 0 ? default_jobs() : jobs;
}

}  // namespace atrcp
