// Tiny deterministic content digest for bench payloads. BENCH_ATRCP.json
// stores one digest per bench instead of the (often multi-megabyte)
// deterministic payload itself; comparing digests across `--jobs` settings
// — or across PRs — is how the perf trajectory proves "same bytes, less
// wall-clock". FNV-1a is not cryptographic; it only needs to make an
// accidental payload change visible.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace atrcp {

/// 64-bit FNV-1a over the bytes of `text`.
constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Fixed-width lowercase hex rendering ("00c0ffee00c0ffee") — the digest
/// format used in BENCH_ATRCP.json.
inline std::string hex64(std::uint64_t value) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace atrcp
