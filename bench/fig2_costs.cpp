// E2 — Figure 2: communication costs of read and write operations of the
// six configurations, as a function of the number of replicas n.
//
// Expected shape (paper §4.1):
//  * MOSTLY-READ: read cost 1 (lowest), write cost n (worst).
//  * MOSTLY-WRITE: read cost (n-1)/2 (highest), write cost ~2 (lowest).
//  * BINARY: the highest costs of the four balanced configurations.
//  * ARBITRARY: lowest write costs of the balanced four (~sqrt(n)); read
//    costs below BINARY and HQC (n^0.63), comparable to UNMODIFIED.
//  * UNMODIFIED: read cost log2(n+1) (least of the four); write cost
//    n/log2(n+1).
#include <iostream>
#include <vector>

#include "analysis/models.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E2: Figure 2 — communication costs vs n ===\n\n";
  const std::vector<std::size_t> ns = {40,  70,  100, 150, 200,
                                       300, 400, 600, 800, 1000};
  const auto configs = paper_configurations();

  for (const char* which : {"read", "write"}) {
    std::vector<std::string> header = {"n"};
    for (const auto& config : configs) header.push_back(config.name);
    Table table(header);
    for (std::size_t n : ns) {
      std::vector<std::string> row = {cell(n)};
      for (const auto& config : configs) {
        const ConfigMetrics m = config.at(n, 0.9);
        const double cost =
            std::string(which) == "read" ? m.read_cost : m.write_cost;
        row.push_back(cell(cost, 1));
      }
      table.add_row(std::move(row));
    }
    std::cout << which << " communication cost:\n";
    table.print_text(std::cout);
    std::cout << '\n';
  }

  std::cout
      << "Shape checks (paper §4.1):\n"
      << "  MOSTLY-READ read cost == 1, write cost == n            -> "
      << (mostly_read_metrics(200, .9).read_cost == 1.0 &&
                  mostly_read_metrics(200, .9).write_cost == 200.0
              ? "OK"
              : "MISMATCH")
      << "\n  MOSTLY-WRITE write cost ~ 2                            -> "
      << (mostly_write_metrics(201, .9).write_cost < 2.2 ? "OK" : "MISMATCH")
      << "\n  BINARY cost highest of the balanced four (n=400)       -> "
      << (binary_metrics(400, .9).read_cost >
                  std::max({unmodified_metrics(400, .9).read_cost,
                            arbitrary_metrics(400, .9).read_cost,
                            hqc_metrics(400, .9).read_cost})
              ? "OK"
              : "MISMATCH")
      << "\n  ARBITRARY write cost lowest of the balanced four (400) -> "
      << (arbitrary_metrics(400, .9).write_cost <
                  std::min({binary_metrics(400, .9).write_cost,
                            unmodified_metrics(400, .9).write_cost,
                            hqc_metrics(400, .9).write_cost})
              ? "OK"
              : "MISMATCH")
      << "\n  UNMODIFIED read cost least of the balanced four (400)  -> "
      << (unmodified_metrics(400, .9).read_cost <=
                  std::min({binary_metrics(400, .9).read_cost,
                            arbitrary_metrics(400, .9).read_cost,
                            hqc_metrics(400, .9).read_cost})
              ? "OK"
              : "MISMATCH")
      << "\n";
  return 0;
}
