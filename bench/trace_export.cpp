// E18 — causal flight recorder export: runs a seeded Table 1 (1-3-5)
// cluster with the event bus on, injects a crash/recover fault so the
// timeline shows failure handling, runs the critical-path analyzer over
// the recording, and exports the events as Chrome trace-event JSON
// (chrome://tracing / Perfetto) with the top-5 slowest committed
// transactions' critical paths overlaid as their own track. The bench is
// its own smoke test: it validates the JSON with the obs linter, requires
// nonzero send->deliver flow events and critical-path slices, and re-runs
// the identical seed to assert the export is byte-identical — exiting
// nonzero on any miss.
//
// Usage: bench_trace_export [--out PATH]
//   --out PATH  additionally writes the trace JSON to PATH.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/event_bus.hpp"
#include "obs/json_lint.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

using namespace atrcp;

namespace {

/// One full seeded run: 1-3-5 tree, two clients, a mid-run crash/recover
/// of replica 3, flight recorder on. Returns the Chrome trace JSON with
/// the critical-path overlay; `report` receives the analysis.
std::string record_run(ChromeTraceStats* stats, CriticalPathReport* report) {
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.event_bus_capacity = 1 << 15;
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  cluster.injector().crash_at(20'000, 3);
  cluster.injector().recover_at(120'000, 3);
  WorkloadOptions workload;
  workload.transactions_per_client = 60;
  workload.read_fraction = 0.5;
  workload.num_keys = 8;
  run_workload(cluster, workload);
  *report = analyze_critical_paths(*cluster.events());
  ShardTrace shard;
  shard.bus = cluster.events();
  shard.site_names = cluster.site_names();
  shard.critical = report;
  shard.top_k = 5;
  return chrome_trace_shards_json({shard}, stats);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_trace_export [--out PATH]\n";
      return 2;
    }
  }

  std::cout << "=== E18: causal flight recorder -> Chrome trace export "
               "===\n\n";
  ChromeTraceStats stats{};
  CriticalPathReport report;
  const std::string trace = record_run(&stats, &report);
  std::cout << "records " << stats.records << ", tracks " << stats.tracks
            << ", flow begins " << stats.flow_begins << ", flow ends "
            << stats.flow_ends << ", critical slices "
            << stats.critical_slices << ", bytes " << trace.size() << "\n";

  bool ok = true;
  std::string error;
  if (!json_valid(trace, &error)) {
    std::cout << "FAIL: export is not valid JSON (" << error << ")\n";
    ok = false;
  } else {
    std::cout << "JSON lint: ok\n";
  }
  if (stats.flow_begins == 0 || stats.flow_ends == 0) {
    std::cout << "FAIL: no causal send->deliver flow events recorded\n";
    ok = false;
  } else {
    std::cout << "causal edges: " << stats.flow_begins << " sends linked to "
              << stats.flow_ends << " deliveries/drops\n";
  }
  if (report.txns_analyzed == 0 || stats.critical_slices == 0) {
    std::cout << "FAIL: critical-path analyzer reconstructed no committed "
                 "transactions\n";
    ok = false;
  } else {
    std::cout << "critical path: " << report.txns_analyzed
              << " txns analyzed, decomposition lock=" << report.lock_us
              << "us network=" << report.network_us << "us service="
              << report.service_us << "us local=" << report.local_us
              << "us of " << report.total_us << "us total\n";
    std::size_t rank = 0;
    for (const TxnCriticalPath* path : report.slowest(5)) {
      std::cout << "  cp#" << ++rank << " txn " << path->txn_id << " coord "
                << path->coordinator << ": " << path->total_us() << "us, "
                << path->rounds << " rounds, " << path->segments.size()
                << " segments\n";
    }
  }

  // Determinism: the identical seed must export the identical bytes —
  // recording consumes no randomness, so two runs agree event for event.
  ChromeTraceStats second_stats{};
  CriticalPathReport second_report;
  const std::string second = record_run(&second_stats, &second_report);
  if (second != trace) {
    std::cout << "FAIL: same-seed re-run exported different bytes\n";
    ok = false;
  } else {
    std::cout << "determinism: same-seed re-run is byte-identical\n";
  }

  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::binary);
    file << trace;
    if (!file) {
      std::cout << "FAIL: could not write " << out_path << "\n";
      ok = false;
    } else {
      std::cout << "wrote " << out_path << " (" << trace.size()
                << " bytes; open in chrome://tracing or Perfetto)\n";
    }
  }

  std::cout << (ok ? "\nRESULT: PASS\n" : "\nRESULT: FAIL\n");
  return ok ? 0 : 1;
}
