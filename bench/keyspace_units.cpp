#include "keyspace_units.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "keyspace/keyspace.hpp"
#include "keyspace/multi_history.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/qsketch.hpp"
#include "obs/site_load.hpp"
#include "txn/cluster.hpp"

namespace atrcp::benchio {
namespace {

std::string fixed4(double value) {
  if (std::isnan(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4f", value);
  return buffer;
}

std::string check_suffix(const ShardedKeyspace& keyspace,
                         const std::vector<Key>& remap_allowed) {
  const KeyspaceCheckResult check =
      check_keyspace_histories(keyspace.histories(), remap_allowed);
  std::string out = check.ok ? " check=ok" : " check=FAIL";
  out += " lin_checked=" + std::to_string(check.lin_keys_checked) +
         " lin_skipped=" + std::to_string(check.lin_keys_skipped);
  if (!check.ok) out += "\n" + check.report;
  return out;
}

/// One standard mix over a 4-tree keyspace of 9-site arbitrary trees —
/// small enough that the grid's cost is the workload shapes, not the
/// quorum fan-out, with the key-aware checker run inline on the recorded
/// histories.
ShardResult mix_grid_cell(std::size_t index, std::uint64_t ops_per_client) {
  const std::vector<KeyspaceMix> mixes = standard_mixes();
  const KeyspaceMix& mix = mixes.at(index);

  KeyspaceOptions options;
  options.shards = 4;
  options.shard_protocol = [] {
    return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
  };
  options.clients = 4;
  options.seed = 0xE21 + index;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.record_history = true;
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = mix;
  run.records = 256;
  run.ops_per_client = ops_per_client;
  run.workload_seed = 2100 + index;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  ShardResult out;
  out.payload = mix.name + " " + stats.line() + " kinds=[";
  for (std::size_t kind = 0; kind < stats.ops_by_kind.size(); ++kind) {
    if (kind) out.payload += ",";
    out.payload += std::to_string(stats.ops_by_kind[kind]);
  }
  out.payload += "]";
  out.payload += check_suffix(keyspace, {});
  out.payload += "\n";
  out.committed = stats.committed;
  return out;
}

/// The flagship load-bound meter: 4 home shards, each a 64-site ARBITRARY
/// tree, under the Zipfian theta=0.99 update-heavy mix. The payload is a
/// JSON array body — one object per keyspace shard with the measured max
/// read/write site-load shares beside the analytic optima 1/d = 1/4 and
/// 1/|K_phy| = 1/sqrt(64) = 1/8 (Facts 3.2.3/3.2.4), plus a trailing
/// summary object — embedded verbatim into BENCH_ATRCP.json.
///
/// Shares are only meaningful once a shard has seen enough quorums for the
/// empirical max to settle: with 15 txns a single hot coordinator reads as
/// max_read_share 0.53 against the 0.25 optimum, pure small-sample noise.
/// Below the floor the share fields are emitted as null (the `txns` field
/// says why); the analytic optima are always printed.
constexpr std::uint64_t kLoadShareFloor = 50;

ShardResult load64_cell(std::uint64_t ops_per_client) {
  KeyspaceOptions options;
  options.shards = 4;
  options.shard_protocol = [] { return make_arbitrary(64); };
  options.clients = 4;
  options.seed = 64;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];  // ycsb_a: zipfian theta=0.99, 50% updates
  run.records = 128;
  run.ops_per_client = ops_per_client;
  run.workload_seed = 6400;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  // The analytic optima come from one reference instance — every shard
  // runs an identical tree.
  const std::unique_ptr<ArbitraryProtocol> reference = make_arbitrary(64);
  ShardResult out;
  for (std::size_t shard = 0; shard < keyspace.shard_count(); ++shard) {
    SiteLoadOptions load_options;
    load_options.protocol = reference->name();
    load_options.universe = reference->universe_size();
    load_options.analytic_read_load = reference->read_load();
    load_options.analytic_write_load = reference->write_load();
    const SiteLoadTable table =
        collect_site_load(keyspace.cluster(shard).metrics(), load_options);
    const std::uint64_t txns = stats.txns_per_cluster[shard];
    const bool sampled = txns >= kLoadShareFloor;
    const double nan = std::nan("");
    out.payload += "{\"shard\":" + std::to_string(shard) +
                   ",\"protocol\":\"" + table.protocol +
                   "\",\"txns\":" + std::to_string(txns) +
                   ",\"read_quorums\":" + std::to_string(table.read_quorums) +
                   ",\"write_quorums\":" + std::to_string(table.write_quorums) +
                   ",\"max_read_share\":" +
                   fixed4(sampled ? table.max_read_share : nan) +
                   ",\"optimal_read_load\":" +
                   fixed4(load_options.analytic_read_load) +
                   ",\"max_write_share\":" +
                   fixed4(sampled ? table.max_write_share : nan) +
                   ",\"optimal_write_load\":" +
                   fixed4(load_options.analytic_write_load) + "},\n";
  }
  out.payload += "{\"summary\":true,\"mix\":\"" + run.mix.name +
                 "\",\"zipf_theta\":" + fixed4(run.mix.zipf_theta) +
                 ",\"stats\":\"" + stats.line() + "\"}";
  out.committed = stats.committed;
  return out;
}

/// Skewed traffic (8 records) through the hot-key promote/restore
/// lifecycle: batched run with the remap policy on, the transition log in
/// the payload, and the key-aware check run with the remap allow-list.
ShardResult remap_cell(std::uint64_t ops_per_client) {
  KeyspaceOptions options;
  options.shards = 2;
  options.shard_protocol = [] {
    return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
  };
  options.light_protocol = [] { return make_mostly_read(5); };
  options.clients = 4;
  options.seed = 77;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.record_history = true;
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];  // zipfian ycsb_a
  run.records = 8;                // tiny universe => extreme skew
  run.ops_per_client = ops_per_client;
  run.workload_seed = 5;
  run.batch_size = ops_per_client / 8 > 4 ? ops_per_client / 8 : 4;
  run.promote_top_k = 2;
  run.promote_min_count = 6;
  run.restore_below = 2;
  run.max_remapped = 2;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  ShardResult out;
  out.payload = stats.line() +
                check_suffix(keyspace, keyspace.remap().ever_remapped_keys()) +
                "\n";
  for (const RemapTransition& transition : keyspace.remap().log()) {
    out.payload += "  " + transition.to_string() + "\n";
  }
  out.committed = stats.committed;
  return out;
}

/// One standard mix through a 4-shard keyspace with every cluster's
/// telemetry on, shard registries folded into one — the payload is a JSON
/// object carrying the merged tail sketches: commit / non-commit latency
/// quantiles, the quorum-size distributions (keyed by metric name) and the
/// per-site turnaround p99s. Pure integers end to end, so the digest is
/// jobs-invariant like every other cell.
ShardResult tail_cell(std::size_t index, std::uint64_t ops_per_client) {
  const std::vector<KeyspaceMix> mixes = standard_mixes();
  const KeyspaceMix& mix = mixes.at(index);

  KeyspaceOptions options;
  options.shards = 4;
  options.shard_protocol = [] {
    return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
  };
  options.clients = 4;
  options.seed = 0xE22 + index;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = mix;
  run.records = 256;
  run.ops_per_client = ops_per_client;
  run.workload_seed = 2200 + index;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  // Fold the shard registries in shard order — QuantileSketch merges are
  // exact and commutative, so this aggregate is the same one any grouping
  // of the shards would produce.
  MetricsRegistry merged;
  for (std::size_t shard = 0; shard < keyspace.cluster_count(); ++shard) {
    merged.merge_from(keyspace.cluster(shard).metrics());
  }
  const auto sketch_json = [&merged](const std::string& name) {
    const QuantileSketch* sketch = merged.find_qsketch(name);
    return sketch != nullptr ? sketch->to_json() : std::string("null");
  };

  ShardResult out;
  out.payload = "{\"mix\":\"" + mix.name +
                "\",\"committed\":" + std::to_string(stats.committed) +
                ",\"txns\":" + std::to_string(stats.txns) +
                ",\"commit_us\":" + sketch_json("txn.tail.commit_us") +
                ",\"noncommit_us\":" + sketch_json("txn.tail.noncommit_us") +
                ",\"quorum_size\":{";
  bool first = true;
  for (const auto& [name, sketch] : merged.qsketches()) {
    const bool is_size = name.size() > 5 &&
                         name.compare(name.size() - 5, 5, ".size") == 0;
    if (!is_size || name.rfind("quorum.", 0) != 0) continue;
    if (!first) out.payload += ",";
    first = false;
    out.payload += "\"" + name + "\":" + sketch->to_json();
  }
  out.payload += "},\"site_turnaround_p99\":[";
  for (std::uint32_t site = 0;; ++site) {
    const QuantileSketch* sketch = merged.find_qsketch(
        "txn.tail.site." + std::to_string(site) + ".turnaround_us");
    if (sketch == nullptr) break;
    if (site) out.payload += ",";
    out.payload += std::to_string(sketch->p99());
  }
  out.payload += "]},\n";
  out.committed = stats.committed;
  return out;
}

/// A flight-recorded 2-shard run analyzed by the critical-path pass: the
/// payload is the merged CriticalPathReport as JSON — where committed
/// transactions actually spent their time (lock wait / request flight /
/// service / reply flight) and which sites straggled.
ShardResult cpath_cell(std::uint64_t ops_per_client) {
  KeyspaceOptions options;
  options.shards = 2;
  options.shard_protocol = [] {
    return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
  };
  options.clients = 4;
  options.seed = 0xCAFE;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.event_bus_capacity = 1 << 15;
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];  // ycsb_a: zipfian theta=0.99
  run.records = 64;
  run.ops_per_client = ops_per_client;
  run.workload_seed = 0xC1;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  CriticalPathReport merged;
  for (std::size_t shard = 0; shard < keyspace.cluster_count(); ++shard) {
    merged.merge_from(analyze_critical_paths(*keyspace.cluster(shard).events()));
  }
  ShardResult out;
  out.payload = merged.to_json(5);
  out.committed = stats.committed;
  return out;
}

/// Sketch-mode hotness over a MILLION-key universe across 16 home shards,
/// with the exact oracle kept alongside (cross_check) — the cell verifies
/// the sketch's hard guarantees on every key the oracle saw: lower bound
/// <= true count <= upper bound, and every key hotter than the Space-Saving
/// threshold monitored. Any violation puts "bounds=FAIL" in the payload
/// (and therefore in the digest).
ShardResult msketch_cell(std::size_t index, std::uint64_t ops_per_client) {
  KeyspaceOptions options;
  options.shards = 16;
  options.shard_protocol = [] {
    return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
  };
  options.clients = 4;
  options.seed = 0x1A + index;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.hotness.mode = HotnessMode::kSketch;
  options.hotness.cross_check = true;
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];  // zipfian theta=0.99: real heavy hitters
  run.records = index == 0 ? 1'000'000 : 65'536;
  run.ops_per_client = ops_per_client;
  run.workload_seed = 0x3E7 + index;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  const HotnessTracker& hotness = keyspace.hotness();
  const FreqSketch& sketch = *hotness.sketch();
  bool bounds_ok = true;
  std::uint64_t max_overshoot = 0;
  std::size_t oracle_keys = 0;
  for (const auto& [key, exact] : hotness.exact_top(
           static_cast<std::size_t>(hotness.window_total()) + 1)) {
    ++oracle_keys;
    const std::uint64_t lower = hotness.count_lower(key);
    const std::uint64_t upper = hotness.count_upper(key);
    if (lower > exact || upper < exact) bounds_ok = false;
    if (exact > sketch.guaranteed_hot_threshold() && !sketch.monitored(key)) {
      bounds_ok = false;
    }
    if (upper - exact > max_overshoot) max_overshoot = upper - exact;
  }
  ShardResult out;
  out.payload = "msketch records=" + std::to_string(run.records) +
                " shards=16 window=" + std::to_string(hotness.window_total()) +
                " oracle_keys=" + std::to_string(oracle_keys) +
                " hot_threshold=" +
                std::to_string(sketch.guaranteed_hot_threshold()) +
                " max_overshoot=" + std::to_string(max_overshoot) +
                (bounds_ok ? " bounds=ok" : " bounds=FAIL check=FAIL") +
                " digest=" + std::to_string(sketch.digest() % 1000000007) +
                " top=[";
  bool first = true;
  for (const auto& [key, upper] : hotness.top(4)) {
    if (!first) out.payload += ",";
    first = false;
    out.payload += std::to_string(key) + ":" + std::to_string(upper);
  }
  out.payload += "] " + stats.line() + "\n";
  out.committed = stats.committed;
  return out;
}

}  // namespace

const std::vector<KeyspaceUnit>& keyspace_units() {
  static const std::vector<KeyspaceUnit> units = [] {
    std::vector<KeyspaceUnit> out;
    out.push_back({"mix_grid", standard_mixes().size(), 120,
                   [](std::size_t shard, std::uint64_t ops) {
                     return mix_grid_cell(shard, ops);
                   }});
    out.push_back({kLoadBoundsUnit, 1, 250,
                   [](std::size_t, std::uint64_t ops) {
                     return load64_cell(ops);
                   }});
    out.push_back({"remap", 1, 200, [](std::size_t, std::uint64_t ops) {
                     return remap_cell(ops);
                   }});
    out.push_back({kTailUnit, standard_mixes().size(), 120,
                   [](std::size_t shard, std::uint64_t ops) {
                     return tail_cell(shard, ops);
                   }});
    out.push_back({kCriticalPathUnit, 1, 150,
                   [](std::size_t, std::uint64_t ops) {
                     return cpath_cell(ops);
                   }});
    out.push_back({"msketch", 2, 200, [](std::size_t shard, std::uint64_t ops) {
                     return msketch_cell(shard, ops);
                   }});
    return out;
  }();
  return units;
}

}  // namespace atrcp::benchio
