// bench_hotpath — E19: per-operation cost of the simulation substrate's
// hot paths (scheduler churn, network send/deliver, quorum assembly).
//
// Runs every hotpath unit serially, reports ns/op per unit, and writes the
// hotpath section of BENCH_ATRCP.json into the working directory: the
// "hotpath" array (name, shards, ops, FNV payload digest) is deterministic
// and byte-identical across runs and hosts; the single "timing" line
// (ns/op, ops/sec) is the host-dependent perf record. bench_all emits the
// same units inside its full document — this binary is the quick refresher
// when only the hot paths are of interest.
//
// Flags:
//   --smoke        tiny iteration counts (CI wiring check, not a perf run)
//   --lint <file>  validate <file> with obs::json_lint and exit
//
// Exit 0 iff every unit ran, a repeat run of every unit reproduced the
// same payload digest, and the emitted document lints.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "driver/digest.hpp"
#include "hotpath_units.hpp"
#include "obs/json_lint.hpp"
#include "sim/message_pool.hpp"

using namespace atrcp;
using namespace atrcp::benchio;

namespace {

struct UnitRun {
  std::string payload;
  std::uint64_t ops = 0;
  double wall_ms = 0;
};

UnitRun run_unit(const HotpathUnit& unit, std::uint64_t iters) {
  UnitRun out;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t shard = 0; shard < unit.shards; ++shard) {
    ShardResult result = unit.run(shard, iters);
    out.payload += result.payload;
    out.ops += result.committed;
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

std::string fixed(double value, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

/// The MessagePool leak regression gate: after warm-up, repeated identical
/// iterations must leave the pool's footprint flat — `fresh` stops growing
/// (steady state recycles), the retained free-list block count stays at
/// its high-water mark, and oversized bodies never enter the free lists at
/// all. A failure here means a long sweep's memory grows with run length.
bool pool_stats_flat() {
  struct Body {
    std::array<char, 200> bytes{};
  };
  struct HugeBody {
    std::array<char, 3 * MessagePool::kMaxPooledBytes> bytes{};
  };
  MessagePool pool;
  const auto churn = [&pool] {
    std::vector<std::shared_ptr<Body>> live;
    for (int i = 0; i < 256; ++i) {
      live.push_back(pool.make<Body>());
      if (live.size() > 32) live.erase(live.begin());
    }
    { auto huge = pool.make<HugeBody>(); }  // bypasses every bucket
  };
  churn();  // warm-up establishes the high-water mark
  const MessagePool::Stats warm = pool.stats();
  for (int i = 0; i < 8; ++i) churn();
  const MessagePool::Stats after = pool.stats();
  const bool flat = after.fresh == warm.fresh &&
                    after.free_blocks == warm.free_blocks &&
                    after.reused > warm.reused && after.oversize == 9;
  std::printf("pool_flat      %s fresh=%llu free_blocks=%zu reused=%llu "
              "oversize=%llu trimmed=%llu\n",
              flat ? "OK  " : "FAIL",
              static_cast<unsigned long long>(after.fresh), after.free_blocks,
              static_cast<unsigned long long>(after.reused),
              static_cast<unsigned long long>(after.oversize),
              static_cast<unsigned long long>(after.trimmed));
  if (!flat) {
    std::printf("  pool footprint grew across identical iterations — the "
                "recycler is leaking or an oversized body entered a bucket\n");
  }
  return flat;
}

int lint_file(const char* path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::printf("FAIL cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  if (!json_valid(text.str(), &error)) {
    std::printf("FAIL %s does not lint: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("OK %s lints (%zu bytes)\n", path, text.str().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--lint") == 0 && i + 1 < argc) {
      return lint_file(argv[i + 1]);
    } else {
      std::printf("usage: bench_hotpath [--smoke] [--lint <file>]\n");
      return 2;
    }
  }

  bool all_ok = true;
  std::string units_json;
  std::string timing_json;
  std::printf("# bench_hotpath%s: %zu units\n", smoke ? " (smoke)" : "",
              hotpath_units().size());
  all_ok = pool_stats_flat() && all_ok;
  for (const HotpathUnit& unit : hotpath_units()) {
    const std::uint64_t iters =
        smoke ? (unit.iters / 50 > 1000 ? unit.iters / 50 : 1000) : unit.iters;
    const UnitRun run = run_unit(unit, iters);
    const UnitRun rerun = run_unit(unit, iters);
    const bool stable = run.payload == rerun.payload;
    all_ok = all_ok && stable;
    const double ns_per_op =
        run.ops > 0 ? run.wall_ms * 1e6 / static_cast<double>(run.ops) : 0;
    const double best_ms = rerun.wall_ms < run.wall_ms ? rerun.wall_ms : run.wall_ms;
    const double best_ns =
        run.ops > 0 ? best_ms * 1e6 / static_cast<double>(run.ops) : 0;
    const std::string digest = hex64(fnv1a64(run.payload));
    std::printf("%-14s %s shards=%zu ops=%llu ns/op=%s (best %s) digest=%s\n",
                unit.name.c_str(), stable ? "OK  " : "FAIL", unit.shards,
                static_cast<unsigned long long>(run.ops),
                fixed(ns_per_op, 1).c_str(), fixed(best_ns, 1).c_str(),
                digest.c_str());
    if (!stable) {
      std::printf("  repeat run changed the payload — unit is not a pure "
                  "function of its shard index\n");
    }
    if (!units_json.empty()) units_json += ",\n";
    units_json += "{\"name\":\"" + unit.name +
                  "\",\"shards\":" + std::to_string(unit.shards) +
                  ",\"ops\":" + std::to_string(run.ops) + ",\"digest\":\"" +
                  digest + "\"}";
    if (!timing_json.empty()) timing_json += ",";
    timing_json += "{\"name\":\"" + unit.name +
                   "\",\"wall_ms\":" + fixed(run.wall_ms, 1) +
                   ",\"ns_per_op\":" + fixed(best_ns, 1) + ",\"ops_per_sec\":" +
                   fixed(best_ms > 0
                             ? static_cast<double>(run.ops) / (best_ms / 1e3)
                             : 0,
                         0) +
                   "}";
  }

  std::ostringstream doc;
  doc << "{\n\"bench\":\"atrcp\",\n\"schema\":1,\n\"hotpath\":[\n"
      << units_json << "\n],\n\"timing\":{\"smoke\":" << (smoke ? "true" : "false")
      << ",\"units\":[" << timing_json << "]}\n}\n";
  std::string error;
  if (!json_valid(doc.str(), &error)) {
    all_ok = false;
    std::printf("FAIL hotpath document does not lint: %s\n", error.c_str());
  }
  const char* path = "BENCH_ATRCP.json";
  std::ofstream file(path, std::ios::binary);
  file << doc.str();
  file.close();
  std::printf("# wrote %s (%zu bytes)\n", file ? path : "(write failed)",
              doc.str().size());
  std::printf(all_ok ? "# bench_hotpath: PASS\n" : "# bench_hotpath: FAIL\n");
  return all_ok ? 0 : 1;
}
