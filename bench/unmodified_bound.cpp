// E6 — §3.3's new lower bound: applying the arbitrary protocol, unmodified,
// to the complete binary tree of Agrawal–El Abbadi [2] yields a write load
// of 1/log2(n+1), strictly below the 2/(log2(n+1)+1) optimal load that
// Naor–Wool [10] proved for [2]'s own quorums on the same structure.
//
// For small trees we also verify both numbers with the LP solver over the
// explicitly enumerated quorum systems — the bound is checked, not assumed.
#include <cmath>
#include <iostream>

#include "core/analysis.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/tree_quorum.hpp"
#include "quorum/lp.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E6: write-load lower bound on the binary tree of [2] "
               "===\n\n";

  Table table({"h", "n", "ours 1/log2(n+1)", "Naor-Wool 2/(log2(n+1)+1)",
               "improvement"});
  for (std::uint32_t h = 1; h <= 12; ++h) {
    const std::size_t n = (1u << (h + 1)) - 1;
    const ArbitraryAnalysis analysis(unmodified_tree(h));
    const double ours = analysis.write_load();
    const double naor_wool = 2.0 / (std::log2(static_cast<double>(n) + 1) + 1);
    table.add_row({cell(h), cell(n), cell(ours, 4), cell(naor_wool, 4),
                   cell(naor_wool / ours, 3) + "x"});
  }
  table.print_text(std::cout);

  std::cout << "\nLP verification on small trees (exact optimal loads over "
               "the enumerated quorum systems):\n";
  Table lp_table({"h", "n", "UNMODIFIED write LP", "formula",
                  "BINARY quorums LP", "2/(h+2)"});
  for (std::uint32_t h = 1; h <= 3; ++h) {
    const std::size_t n = (1u << (h + 1)) - 1;
    const ArbitraryProtocol unmodified(unmodified_tree(h));
    const SetSystem writes(n, unmodified.enumerate_write_quorums(100));
    const double lp_unmodified = optimal_load(writes).load;

    const TreeQuorum binary(h);
    const SetSystem binary_quorums(n, binary.enumerate_read_quorums(100000));
    const double lp_binary = optimal_load(binary_quorums).load;

    lp_table.add_row({cell(h), cell(n), cell(lp_unmodified, 4),
                      cell(1.0 / (h + 1.0), 4), cell(lp_binary, 4),
                      cell(2.0 / (h + 2.0), 4)});
  }
  lp_table.print_text(std::cout);
  std::cout << "\n(Each LP column must equal its closed-form neighbour; the "
               "UNMODIFIED write load is the lower of the two.)\n";
  return 0;
}
