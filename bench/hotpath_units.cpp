#include "hotpath_units.hpp"

#include <array>
#include <memory>

#include "check/explorer.hpp"
#include "obs/metrics.hpp"
#include "protocols/protocol.hpp"
#include "quorum/types.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace atrcp::benchio {
namespace {

// -- sched_churn: self-rescheduling event storm ------------------------------
//
// kNodes events live in the queue at all times; each firing mixes the clock
// into an accumulator and reschedules itself with a data-dependent delay.
// This is pure Scheduler cost: entry storage, heap sift, callable dispatch.

constexpr std::size_t kChurnNodes = 64;

struct ChurnNode {
  Scheduler* sched = nullptr;
  std::uint64_t remaining = 0;
  std::uint64_t acc = 0;

  void fire() {
    acc += sched->now() ^ remaining;
    if (--remaining > 0) {
      sched->schedule_after(1 + (acc % 7), [this] { fire(); });
    }
  }
};

ShardResult sched_churn_shard(std::size_t shard, std::uint64_t iters) {
  Scheduler sched;
  std::array<ChurnNode, kChurnNodes> nodes;
  const std::uint64_t per_node = iters / kChurnNodes > 0 ? iters / kChurnNodes : 1;
  for (std::size_t i = 0; i < kChurnNodes; ++i) {
    nodes[i].sched = &sched;
    nodes[i].remaining = per_node;
    nodes[i].acc = shard * 0x9E3779B97F4A7C15ULL + i;
    ChurnNode* node = &nodes[i];
    sched.schedule_after(1 + i, [node] { node->fire(); });
  }
  sched.run(per_node * kChurnNodes + kChurnNodes);
  std::uint64_t acc = 0;
  for (const ChurnNode& node : nodes) acc ^= node.acc + 0x9E3779B9 + (acc << 6);
  ShardResult out;
  out.payload = "sched shard=" + std::to_string(shard) +
                " executed=" + std::to_string(sched.executed()) +
                " now=" + std::to_string(sched.now()) +
                " acc=" + std::to_string(acc) + "\n";
  out.committed = sched.executed();
  return out;
}

// -- net_ring: send/deliver loop with metrics attached -----------------------
//
// kBalls messages circulate over kSites sites until the send budget is
// spent. Every hop pays the full production path: link parameter lookup,
// jitter sampling, metrics counters, scheduling a delivery closure that
// owns the message body.

constexpr std::size_t kRingSites = 8;
constexpr std::size_t kRingBalls = 16;

struct Packet final : MessageBody {
  std::uint64_t hop = 0;
};

struct RingState {
  Network* net = nullptr;
  std::uint64_t budget = 0;  ///< sends still allowed
  std::uint64_t acc = 0;
};

struct RingSite final : SiteHandler {
  RingState* state = nullptr;
  SiteId self = 0;

  void on_message(const Message& message) override {
    const auto& packet = static_cast<const Packet&>(*message.body);
    state->acc += packet.hop + message.from;
    if (state->budget == 0) return;
    --state->budget;
    auto next = state->net->make_body<Packet>();
    next->hop = packet.hop + 1;
    state->net->send(self, static_cast<SiteId>((self + 1) % kRingSites),
                     std::move(next));
  }
};

ShardResult net_ring_shard(std::size_t shard, std::uint64_t iters) {
  MetricsRegistry metrics;
  Scheduler sched;
  LinkParams link;
  link.base_latency = 50;
  link.jitter = 20;
  Network net(sched, Rng(0xBA11 + shard), link);
  net.set_metrics(&metrics);
  RingState state;
  state.net = &net;
  std::array<RingSite, kRingSites> sites;
  for (std::size_t i = 0; i < kRingSites; ++i) {
    sites[i].state = &state;
    sites[i].self = net.add_site(sites[i]);
  }
  const std::uint64_t balls = iters < kRingBalls ? iters : kRingBalls;
  state.budget = iters - balls;
  for (std::uint64_t b = 0; b < balls; ++b) {
    auto packet = net.make_body<Packet>();
    packet->hop = shard * 1000 + b;
    const auto from = static_cast<SiteId>(b % kRingSites);
    net.send(from, static_cast<SiteId>((from + 1) % kRingSites),
             std::move(packet));
  }
  sched.run();
  ShardResult out;
  out.payload = "net shard=" + std::to_string(shard) +
                " sent=" + std::to_string(net.messages_sent()) +
                " delivered=" + std::to_string(net.messages_delivered()) +
                " dropped=" + std::to_string(net.messages_dropped()) +
                " now=" + std::to_string(sched.now()) +
                " acc=" + std::to_string(state.acc) + "\n";
  out.committed = net.messages_sent();
  return out;
}

// -- assemble_zoo: live quorum assembly across the protocol zoo --------------
//
// One shard per zoo entry. A mid-universe replica stays failed throughout
// (quorums must route around it) and replica 0 flips between failed and
// alive every kEpochPeriod iterations, so protocols with failure-epoch
// caches pay a periodic rebuild — the steady state measured is "cache hit
// with a real failure present".

constexpr std::uint64_t kEpochPeriod = 4096;

ShardResult assemble_zoo_shard(std::size_t shard, std::uint64_t iters) {
  const std::vector<ZooEntry> zoo = protocol_zoo();
  const ZooEntry& entry = zoo[shard % zoo.size()];
  const std::unique_ptr<ReplicaControlProtocol> protocol = entry.factory();
  const std::size_t n = protocol->universe_size();
  FailureSet failures(n);
  if (n > 2) failures.fail(static_cast<ReplicaId>(n / 2));
  Rng rng(0xA55E + shard);
  std::uint64_t acc = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t writes_ok = 0;
  bool zero_down = false;
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (n > 2 && i % kEpochPeriod == kEpochPeriod - 1) {
      zero_down = !zero_down;
      if (zero_down) {
        failures.fail(0);
      } else {
        failures.recover(0);
      }
    }
    if (const auto q = protocol->assemble_read_quorum(failures, rng)) {
      ++reads_ok;
      acc += q->size();
      acc += q->members().front() * 3 + q->members().back();
    }
    if (const auto q = protocol->assemble_write_quorum(failures, rng)) {
      ++writes_ok;
      acc += q->size() * 2;
    }
  }
  ShardResult out;
  out.payload = "assemble " + entry.label +
                " reads_ok=" + std::to_string(reads_ok) +
                " writes_ok=" + std::to_string(writes_ok) +
                " acc=" + std::to_string(acc) + "\n";
  out.committed = iters * 2;
  return out;
}

}  // namespace

const std::vector<HotpathUnit>& hotpath_units() {
  static const std::vector<HotpathUnit> units = [] {
    std::vector<HotpathUnit> out;
    out.push_back({"sched_churn", 4, 250'000, sched_churn_shard});
    out.push_back({"net_ring", 4, 150'000, net_ring_shard});
    out.push_back(
        {"assemble_zoo", protocol_zoo().size(), 12'000, assemble_zoo_shard});
    return out;
  }();
  return units;
}

}  // namespace atrcp::benchio
