// E10 — empirical cross-check: execute each configuration's actual quorum
// strategy (100k sampled operations) and MEASURE the per-replica load, then
// compare the busiest replica's measured load against the closed-form
// optimal system load, and the mean quorum size against the analytic cost.
// This ties Figures 2-4 to behaviour rather than algebra.
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/empirical.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/hqc.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E10: measured strategy loads vs closed forms ===\n\n";
  std::vector<std::unique_ptr<ReplicaControlProtocol>> protocols;
  protocols.push_back(std::make_unique<ArbitraryProtocol>(
      ArbitraryTree::from_spec("1-3-5")));
  protocols.push_back(make_arbitrary(100));
  protocols.push_back(make_mostly_read(64));
  protocols.push_back(make_mostly_write(63));
  protocols.push_back(make_unmodified(5));
  protocols.push_back(std::make_unique<Rowa>(64));
  protocols.push_back(std::make_unique<MajorityQuorum>(63));
  protocols.push_back(std::make_unique<TreeQuorum>(5));
  protocols.push_back(std::make_unique<Hqc>(4));

  Rng rng(7);
  Table table({"protocol", "n", "L_RD formula", "L_RD measured",
               "L_WR formula", "L_WR measured", "RD cost", "RD measured",
               "WR cost", "WR measured"});
  for (const auto& protocol : protocols) {
    const auto loads = empirical_loads(*protocol, 100000, rng);
    const auto costs = measured_costs(*protocol, 20000, rng);
    table.add_row({protocol->name(), cell(protocol->universe_size()),
                   cell(protocol->read_load(), 4), cell(loads.max_read, 4),
                   cell(protocol->write_load(), 4), cell(loads.max_write, 4),
                   cell(protocol->read_cost(), 2), cell(costs.read, 2),
                   cell(protocol->write_cost(), 2), cell(costs.write, 2)});
  }
  table.print_text(std::cout);
  std::cout
      << "\nNotes: BINARY's measured failure-free load is 1 (every\n"
      << "failure-free quorum is a root path) — its optimal load 2/(h+2)\n"
      << "needs the full quorum mix, exactly the paper's point about\n"
      << "log(n)-cost strategies loading the root. For all arbitrary-family\n"
      << "configurations measured and formula values must agree closely.\n";
  return 0;
}
