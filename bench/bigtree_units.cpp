#include "bigtree_units.hpp"

#include <algorithm>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "quorum/types.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"
#include "util/rng.hpp"

namespace atrcp::benchio {
namespace {

/// Depth budgets shrink 4x per shard: n quadruples and per-op cost roughly
/// doubles (quorums are O(√n)), so the sweep's wall clock stays balanced.
std::uint64_t scaled(std::uint64_t iters, std::size_t shard,
                     std::uint64_t floor) {
  return std::max<std::uint64_t>(iters >> (2 * shard), floor);
}

// -- bigtree_assemble: quorum assembly over Algorithm 1 trees ----------------
//
// Protocol-only: no network, no servers — this is the per-round cost the
// transaction layer pays, isolated. Replica n/2 stays failed throughout and
// replica 0 flips every kChurnPeriod ops, so the level cache pays periodic
// rebuilds like a live run with a real failure present.

constexpr std::uint64_t kChurnPeriod = 512;

ShardResult assemble_shard(std::size_t shard, std::uint64_t iters) {
  const std::size_t n = bigtree_sites(shard);
  const ArbitraryProtocol protocol(algorithm1_tree(n));
  const std::size_t depth = protocol.tree().physical_levels().size();
  std::size_t min_level = n;
  std::size_t max_level = 0;
  for (std::uint32_t level : protocol.tree().physical_levels()) {
    const std::size_t size = protocol.tree().replicas_at_level(level).size();
    min_level = std::min(min_level, size);
    max_level = std::max(max_level, size);
  }

  const std::uint64_t ops = scaled(iters, shard, 64);
  FailureSet failures(n);
  failures.fail(static_cast<ReplicaId>(n / 2));
  Rng rng(0xB167EE + shard);
  std::uint64_t reads_ok = 0;
  std::uint64_t writes_ok = 0;
  std::uint64_t write_members = 0;
  std::uint64_t acc = 0;
  bool zero_down = false;
  for (std::uint64_t i = 0; i < ops; ++i) {
    if (i % kChurnPeriod == kChurnPeriod - 1) {
      zero_down = !zero_down;
      if (zero_down) {
        failures.fail(0);
      } else {
        failures.recover(0);
      }
    }
    if (const auto q = protocol.assemble_read_quorum(failures, rng)) {
      ++reads_ok;
      acc += q->size() + q->members().front() * 3 + q->members().back();
    }
    if (const auto q = protocol.assemble_write_quorum(failures, rng)) {
      ++writes_ok;
      write_members += q->size();
    }
  }
  ShardResult out;
  out.payload = "assemble n=" + std::to_string(n) +
                " depth=" + std::to_string(depth) +
                " level_min=" + std::to_string(min_level) +
                " level_max=" + std::to_string(max_level) +
                " reads_ok=" + std::to_string(reads_ok) +
                " writes_ok=" + std::to_string(writes_ok) +
                " write_members=" + std::to_string(write_members) +
                " acc=" + std::to_string(acc) + "\n";
  out.committed = ops * 2;  // one read + one write assembly per op
  return out;
}

// -- bigtree_txn: full-cluster workload at scale -----------------------------
//
// The end-to-end meter: n replica servers, 4 closed-loop clients, the
// failure injector crashing a replica mid-run so suspicion/reassembly paths
// execute at scale. committed feeds the txns/sec timing line.

ShardResult txn_shard(std::size_t shard, std::uint64_t iters) {
  const std::size_t n = bigtree_sites(shard);
  const std::uint64_t txns = scaled(iters, shard, 8);

  ClusterOptions options;
  options.seed = 0xB16700 + shard;
  options.clients = 4;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(make_arbitrary(n), options);
  cluster.injector().transient_failure(40'000, 3, 120'000);

  WorkloadOptions workload;
  workload.transactions_per_client =
      std::max<std::size_t>(txns / options.clients, 2);
  workload.read_fraction = 0.5;
  workload.num_keys = 64;
  workload.seed = 4242 + shard;
  const WorkloadStats stats = run_workload(cluster, workload);

  ShardResult out;
  out.payload = "txn n=" + std::to_string(n) +
                " committed=" + std::to_string(stats.committed) +
                " aborted=" + std::to_string(stats.aborted) +
                " blocked=" + std::to_string(stats.blocked) +
                " sent=" + std::to_string(cluster.network().messages_sent()) +
                " delivered=" +
                std::to_string(cluster.network().messages_delivered()) +
                " dropped=" +
                std::to_string(cluster.network().messages_dropped()) + "\n";
  out.committed = stats.committed;
  return out;
}

}  // namespace

const std::vector<BigtreeUnit>& bigtree_units() {
  static const std::vector<BigtreeUnit> units = [] {
    std::vector<BigtreeUnit> out;
    out.push_back(
        {"bigtree_assemble", kBigtreeShards, 120'000, assemble_shard});
    out.push_back({"bigtree_txn", kBigtreeShards, 512, txn_shard});
    return out;
  }();
  return units;
}

ShardResult bigtree_construct_probe(std::size_t n) {
  ClusterOptions options;
  options.seed = 11;
  options.clients = 1;
  Cluster cluster(make_arbitrary(n), options);
  const TxnOutcome outcome = cluster.write_sync(0, 1, "probe");
  ShardResult out;
  out.payload = "construct n=" + std::to_string(n) + " outcome=" +
                std::to_string(static_cast<int>(outcome)) + " sites=" +
                std::to_string(cluster.network().site_count()) + "\n";
  out.committed = outcome == TxnOutcome::kCommitted ? 1 : 0;
  return out;
}

}  // namespace atrcp::benchio
