// E3 — Figure 3: (expected) system loads of READ operations of the six
// configurations vs n, at replica availability p.
//
// Expected shape (paper §4.2.1):
//  * MOSTLY-READ: lowest load 1/n, stable, diminishing with n.
//  * MOSTLY-WRITE: load 1/2 for any n, instable (expected load drifts to 1).
//  * UNMODIFIED: the worst — load 1 for any n (root in every read quorum).
//  * HQC: least loads of the balanced four, n^-0.37; least expected loads
//    for n > 15.
//  * BINARY ~ ARBITRARY: similar, comparable to HQC; ARBITRARY pinned at
//    1/4 for n > 32; BINARY at 2/(log2(n+1)+1).
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/models.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E3: Figure 3 — read system loads vs n ===\n\n";
  const std::vector<std::size_t> ns = {8,   16,  33,  70,  100,
                                       200, 400, 700, 1000};
  const auto configs = paper_configurations();
  const double p = 0.7;  // same availability regime as the paper's example

  for (const bool expected : {false, true}) {
    std::vector<std::string> header = {"n"};
    for (const auto& config : configs) header.push_back(config.name);
    Table table(header);
    for (std::size_t n : ns) {
      std::vector<std::string> row = {cell(n)};
      for (const auto& config : configs) {
        const ConfigMetrics m = config.at(n, p);
        row.push_back(cell(expected ? m.expected_read_load : m.read_load, 4));
      }
      table.add_row(std::move(row));
    }
    std::cout << (expected ? "EXPECTED read system load (Eq. 3.2, p = 0.7):"
                           : "read system load (optimal, failure-free):")
              << '\n';
    table.print_text(std::cout);
    std::cout << '\n';
  }

  const auto check = [](bool ok) { return ok ? "OK" : "MISMATCH"; };
  const ConfigMetrics arb400 = arbitrary_metrics(400, p);
  const ConfigMetrics hqc400 = hqc_metrics(400, p);
  const ConfigMetrics bin400 = binary_metrics(400, p);
  std::cout
      << "Shape checks (paper §4.2.1):\n"
      << "  MOSTLY-READ load = 1/n (lowest)              -> "
      << check(mostly_read_metrics(400, p).read_load == 1.0 / 400) << '\n'
      << "  MOSTLY-WRITE load = 1/2, any n               -> "
      << check(mostly_write_metrics(401, p).read_load == 0.5) << '\n'
      << "  UNMODIFIED load = 1 (root bottleneck)        -> "
      << check(unmodified_metrics(400, p).read_load == 1.0) << '\n'
      << "  HQC least of the balanced four (n=400)       -> "
      << check(hqc400.read_load < std::min({bin400.read_load,
                                            arb400.read_load,
                                            unmodified_metrics(400, p)
                                                .read_load})) << '\n'
      << "  ARBITRARY pinned at 1/4 for n > 32           -> "
      << check(arb400.read_load == 0.25 &&
               arbitrary_metrics(64, p).read_load == 0.25) << '\n'
      << "  BINARY = 2/(log2(n+1)+1)                     -> "
      << check(std::abs(bin400.read_load - 2.0 / (std::log2(bin400.n + 1) + 1)) <
               1e-9) << '\n';
  return 0;
}
