// E4 — Figure 4: (expected) system loads of WRITE operations of the six
// configurations vs n, at replica availability p.
//
// Expected shape (paper §4.2.2):
//  * MOSTLY-READ: the worst — load 1 (every replica in every write).
//  * MOSTLY-WRITE: least load 2/(n-1), stable, diminishing with n.
//  * BINARY: highest (expected) load of the balanced four.
//  * ARBITRARY: least load of the balanced four, 1/sqrt(n) under Algorithm
//    1; smallest expected load for small n; HQC catches up for large n when
//    p < 0.8 (its write availability is better there).
//  * UNMODIFIED: second lowest, 1/log2(n+1) — the paper's new lower bound
//    for the binary tree structure of [2].
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/models.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E4: Figure 4 — write system loads vs n ===\n\n";
  const std::vector<std::size_t> ns = {8,   16,  33,  70,  100,
                                       200, 400, 700, 1000};
  const auto configs = paper_configurations();
  const double p = 0.7;

  for (const bool expected : {false, true}) {
    std::vector<std::string> header = {"n"};
    for (const auto& config : configs) header.push_back(config.name);
    Table table(header);
    for (std::size_t n : ns) {
      std::vector<std::string> row = {cell(n)};
      for (const auto& config : configs) {
        const ConfigMetrics m = config.at(n, p);
        row.push_back(
            cell(expected ? m.expected_write_load : m.write_load, 4));
      }
      table.add_row(std::move(row));
    }
    std::cout << (expected ? "EXPECTED write system load (Eq. 3.2, p = 0.7):"
                           : "write system load (optimal, failure-free):")
              << '\n';
    table.print_text(std::cout);
    std::cout << '\n';
  }

  const auto check = [](bool ok) { return ok ? "OK" : "MISMATCH"; };
  const ConfigMetrics arb = arbitrary_metrics(400, p);
  const ConfigMetrics hqc = hqc_metrics(400, p);
  const ConfigMetrics bin = binary_metrics(400, p);
  const ConfigMetrics unm = unmodified_metrics(400, p);
  std::cout
      << "Shape checks (paper §4.2.2):\n"
      << "  MOSTLY-READ write load = 1 (worst)                -> "
      << check(mostly_read_metrics(400, p).write_load == 1.0) << '\n'
      << "  MOSTLY-WRITE = 2/(n-1) (least)                    -> "
      << check(std::abs(mostly_write_metrics(401, p).write_load -
                        2.0 / 400) < 1e-9) << '\n'
      << "  BINARY highest of the balanced four               -> "
      << check(bin.write_load > std::max({arb.write_load, hqc.write_load,
                                          unm.write_load})) << '\n'
      << "  ARBITRARY least of the balanced four, ~1/sqrt(n)  -> "
      << check(arb.write_load < std::min({bin.write_load, hqc.write_load,
                                          unm.write_load}) &&
               std::abs(arb.write_load - 1.0 / std::sqrt(400.0)) < 0.02)
      << '\n'
      // "Second lowest" holds for the moderate n the paper plots; past
      // n ~ 200 HQC's n^-0.37 dips below 1/log2(n+1). Discrete structures
      // realize different n (HQC jumps to 3^k), so compare the paper's own
      // closed forms at the same n = 127.
      << "  UNMODIFIED 2nd lowest (n=127), = 1/log2(n+1)      -> "
      << check(std::abs(unm.write_load - 1.0 / std::log2(unm.n + 1)) < 1e-9 &&
               1.0 / std::log2(128.0) < std::pow(127.0, -0.37) &&
               1.0 / std::log2(128.0) < 2.0 / (std::log2(128.0) + 1) &&
               1.0 / std::log2(128.0) >
                   arbitrary_metrics(127, p).write_load) << '\n'
      << "  HQC write availability beats ARBITRARY at p<0.8   -> "
      << check(hqc_metrics(729, 0.7).write_availability >
               arbitrary_metrics(729, 0.7).write_availability) << '\n';
  return 0;
}
