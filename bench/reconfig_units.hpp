// E23 online-reconfiguration bench units — the latency/abort-rate cost of
// an epoch transition (src/reconfig) measured on a live cluster.
//
// Two unit families:
//
//   "phase_latency"  one shard per transition target (reshape, re-tree,
//                    add a site, remove a site) over a 5-site majority
//                    epoch 0. Each cell runs a closed-loop mixed workload,
//                    fires the transition mid-run and buckets every
//                    transaction by its epoch tag — pure epoch 0, the
//                    overlap window, pure epoch 1 — reporting commit/abort
//                    counts and mean sim-time latency per bucket plus the
//                    phase timeline from the manager's transition log.
//
//   "crash_recovery" one shard per transition phase (prepare..retire).
//                    Each cell crashes the manager mid-phase, recovers it
//                    and asserts the transition still completes exactly
//                    once, with the crash/recover stamps in the payload.
//
// Every cell is a pure function of (shard index, txns_per_client): it
// builds its own Cluster from fixed seeds and touches no shared state, so
// bench_all's serial-vs-sharded digest machinery and bench_reconfig's
// --jobs invariance check both apply unchanged. All latencies are integer
// sim-time microseconds — no floats, no host dependence. Each cell runs
// check_epoch_tags() inline and stamps "check=OK"/"check=FAIL" into its
// payload, so a run that violated the epoch invariants says so in its
// digest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "suite.hpp"

namespace atrcp::benchio {

struct ReconfigUnit {
  std::string name;
  std::size_t shards = 0;
  /// Transactions per client at full depth; callers scale down for smoke
  /// or embedded runs.
  std::uint64_t full_txns = 0;
  std::function<ShardResult(std::size_t shard, std::uint64_t txns_per_client)>
      run;
};

/// The two unit families above, in emission order.
const std::vector<ReconfigUnit>& reconfig_units();

}  // namespace atrcp::benchio
