// E21 sharded-keyspace bench units — the multi-object layer under YCSB
// mixes: the standard-mix grid, the 64-site load-bound meter (the paper's
// Facts 3.2.3/3.2.4 measured per shard under Zipfian skew), and the
// hot-key remap lifecycle.
//
// Each unit's shards are pure functions of (shard index, ops_per_client):
// every cell builds its own ShardedKeyspace from fixed seeds and touches no
// shared state, so bench_all's serial-vs-sharded digest machinery and
// bench_keyspace's --jobs invariance check both apply unchanged. The
// cells with history recording run the key-aware checker inline — a bench
// run that produced a non-serializable or misrouted history says so in its
// payload (and therefore in its digest).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "suite.hpp"

namespace atrcp::benchio {

struct KeyspaceUnit {
  std::string name;
  std::size_t shards = 0;
  /// Keyspace operations issued per client at full depth; callers scale
  /// this down for smoke or embedded runs.
  std::uint64_t full_ops = 0;
  std::function<ShardResult(std::size_t shard, std::uint64_t ops_per_client)>
      run;
};

/// Name of the load-bound unit whose payload is a JSON array body (one
/// object per keyspace shard: measured max read/write site-load share next
/// to the analytic optima 1/d and 1/|K_phy|) embedded verbatim into
/// BENCH_ATRCP.json's "load_bounds" section by bench_keyspace.
inline constexpr const char* kLoadBoundsUnit = "load64";

/// Name of the tail-latency unit: one cell per standard YCSB mix, each
/// cell's payload a JSON object (",\n"-terminated) with the merged
/// QuantileSketch p50/p90/p99/p999 of commit / non-commit latency, the
/// quorum-size distributions and per-site turnaround p99s. bench_keyspace
/// embeds the concatenation as its "tail_latency" array.
inline constexpr const char* kTailUnit = "tail";

/// Name of the critical-path unit: a flight-recorded multi-shard run whose
/// payload is the merged CriticalPathReport::to_json() object — the
/// "critical_path" section of BENCH_ATRCP.json.
inline constexpr const char* kCriticalPathUnit = "cpath";

/// The keyspace unit families: "mix_grid" (one shard per standard YCSB mix
/// over a 4-tree keyspace, checker inline), "load64" (4 shards x 64-site
/// ARBITRARY under Zipfian theta=0.99 — per-shard max load shares vs the
/// 1/4 and 1/sqrt(64) optima), "remap" (skewed traffic through the hot-key
/// promote/restore lifecycle, transition log in the payload), "tail" (the
/// merged quantile-sketch latency distributions per mix), "cpath" (the
/// flight-recorder critical-path breakdown) and "msketch" (sketch-mode
/// hotness at a million-key universe, cross-checked against the exact
/// oracle's bounds).
const std::vector<KeyspaceUnit>& keyspace_units();

}  // namespace atrcp::benchio
