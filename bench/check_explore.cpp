// check_explore — the CI sweep behind the `check_explore` target: 200
// explorer seeds against EVERY protocol in the zoo (all must pass), plus
// the teeth check (BrokenIntersectionProtocol must be flagged with a
// dependency-cycle counterexample within the same 200 seeds).
//
// Build with -DATRCP_SANITIZE=ON and the whole sweep — simulator,
// coordinator, recorder, checker — runs under ASan+UBSan; that is the
// configuration CI uses. Seeds are sharded across `--jobs N` workers
// (default: hardware concurrency) and merged in seed order, so output is
// byte-identical at every worker count — and deterministic: a given binary
// prints byte-identical output on every run. Exit code 0 iff every
// expectation held.
#include <cstdio>
#include <fstream>
#include <memory>

#include "check/broken.hpp"
#include "check/explorer.hpp"
#include "driver/pool.hpp"
#include "obs/json_lint.hpp"

int main(int argc, char** argv) {
  using namespace atrcp;
  constexpr std::uint64_t kFirstSeed = 0;
  constexpr std::size_t kSeeds = 200;

  const RunDriver driver(parse_jobs_flag(argc, argv));
  ScheduleExplorer explorer;
  bool all_ok = true;

  // Note: jobs is echoed on stderr, not stdout — the stdout byte stream is
  // what the CI jobs diff across `--jobs` counts, so it must not mention
  // the worker count. Seeds are swept in blocks of 8 per driver job (see
  // ScheduleExplorer::explore), each block reusing one flight-recorder
  // arena across its seeds.
  std::fprintf(stderr, "# check_explore: jobs=%zu\n", driver.jobs());
  std::printf("# check_explore: %zu seeds x protocol zoo, clients=%zu "
              "txns=%zu keys=%zu\n",
              kSeeds, explorer.options().clients,
              explorer.options().txns_per_client, explorer.options().keys);
  for (const ZooEntry& entry : protocol_zoo()) {
    const ExploreReport report =
        explorer.explore(entry.factory, entry.label, kFirstSeed, kSeeds,
                         /*stop_at_first_failure=*/false, &driver);
    if (report.ok) {
      std::printf("PASS %-14s %zu/%zu seeds ok\n", entry.label.c_str(),
                  report.seeds_run, report.seeds_run);
    } else {
      all_ok = false;
      std::printf("%s", report.text.c_str());
    }
  }

  // Teeth: the deliberately non-intersecting protocol must be caught, and
  // caught with a cycle (not merely a stale read).
  // Run serially (no driver): the failure lands at seed 0, so parallel
  // speculation would only waste the other workers' time here.
  const ExploreReport broken = explorer.explore(
      [] { return std::make_unique<BrokenIntersectionProtocol>(6); },
      "broken-intersection", kFirstSeed, kSeeds,
      /*stop_at_first_failure=*/true);
  if (!broken.ok && !broken.failing_seeds.empty() &&
      broken.text.find("dependency cycle") != std::string::npos) {
    std::printf("PASS broken-intersection flagged at seed %llu with a "
                "dependency cycle\n",
                static_cast<unsigned long long>(broken.failing_seeds.front()));
    // The flight recorder must have dumped the offending schedule's full
    // timeline next to the counterexample; park it on disk for Perfetto.
    if (broken.first_failure_trace.empty() ||
        !json_valid(broken.first_failure_trace)) {
      all_ok = false;
      std::printf("FAIL failing seed carried no valid flight-recorder "
                  "trace\n");
    } else {
      const char* trace_path = "check_explore_counterexample.json";
      std::ofstream file(trace_path, std::ios::binary);
      file << broken.first_failure_trace;
      std::printf("PASS flight recorder dumped %zu bytes -> %s\n",
                  broken.first_failure_trace.size(),
                  file ? trace_path : "(write failed; trace kept in memory)");
    }
  } else {
    all_ok = false;
    std::printf("FAIL broken-intersection was NOT flagged with a cycle "
                "within %zu seeds\n%s",
                kSeeds, broken.text.c_str());
  }

  std::printf(all_ok ? "# check_explore: PASS\n" : "# check_explore: FAIL\n");
  return all_ok ? 0 : 1;
}
