// E24 big-tree scaling units — the paper's Algorithm 1 trees at
// n ∈ {1024, 4096, 16384, 65536} sites, the scale the √n-level asymptotics
// (Facts 3.2.3/3.2.4) actually show at. Runnable at all only on the sparse
// tiled network substrate: the former dense n x n link tables were ~4.3B
// entries at the top of this sweep.
//
// Two unit families, shard s covering n = 1024 * 4^s:
//   "bigtree_assemble" — protocol-only quorum assembly over an Algorithm 1
//     tree with failure churn; measures assembly ns/op and pins the tree
//     geometry (depth, quorum sizes) into the payload.
//   "bigtree_txn"      — a full Cluster (servers, coordinators, injector)
//     running a mixed workload end to end; measures committed txns/sec and
//     pins commit/abort/message counts.
//
// Each shard is a pure function of its index, so the units slot into
// bench_all's serial-vs-sharded digest machinery unchanged. Depth budgets
// are divided by 4 per shard (n quadruples, per-op cost roughly doubles),
// so wall clock stays balanced across the sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "suite.hpp"

namespace atrcp::benchio {

struct BigtreeUnit {
  std::string name;
  /// One shard per swept site count; shard s runs n = bigtree_sites(s).
  std::size_t shards = 0;
  /// Full-depth budget for shard 0 (ops for assemble, transactions for
  /// txn); shard s runs budget / 4^s, floored at a useful minimum.
  std::uint64_t iters = 0;
  std::function<ShardResult(std::size_t shard, std::uint64_t iters)> run;
};

/// Site count covered by shard `shard` of every bigtree unit.
constexpr std::size_t bigtree_sites(std::size_t shard) {
  return std::size_t{1024} << (2 * shard);
}

/// Shards in the full sweep (up to n = 65536).
inline constexpr std::size_t kBigtreeShards = 4;
/// Shards bench_all runs (up to n = 16384, at half depth).
inline constexpr std::size_t kBigtreeBenchAllShards = 3;

const std::vector<BigtreeUnit>& bigtree_units();

/// Construct-only probe: builds a full Cluster at `n` and runs one
/// transaction through it. Returns the deterministic payload. Used by the
/// bench_bigtree smoke mode to prove large-n construction stays cheap — a
/// dense-table regression either blows the RSS budget or hangs in the
/// O(n^3) rebuild long before this returns.
ShardResult bigtree_construct_probe(std::size_t n);

}  // namespace atrcp::benchio
