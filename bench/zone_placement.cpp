// E15 — zone placement ablation (beyond the paper's i.i.d. failure model):
// how aligned vs striped zone placement of the same tree changes which
// operations survive correlated (zone) outages. The placement is a second
// configuration dial, dual to the tree shape: align zones with levels for
// write-heavy systems, stripe them for read-heavy ones.
#include <iostream>

#include "analysis/zones.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E15: zone placement under correlated failures ===\n\n";
  const ArbitraryProtocol protocol(balanced_tree(36, 6));  // six 6-wide levels
  Rng rng(7);

  {
    const auto aligned = single_zone_effect(protocol, aligned_zones(protocol.tree()));
    const auto striped =
        single_zone_effect(protocol, striped_zones(protocol.tree(), 6));
    Table table({"placement", "zones", "zone outages blocking reads",
                 "blocking writes"});
    table.add_row({"aligned (zone = level)", cell(aligned.zone_count),
                   cell(aligned.zones_blocking_reads),
                   cell(aligned.zones_blocking_writes)});
    table.add_row({"striped (round robin)", cell(striped.zone_count),
                   cell(striped.zones_blocking_reads),
                   cell(striped.zones_blocking_writes)});
    std::cout << "exact single-zone-outage classification (tree 1-6x6):\n";
    table.print_text(std::cout);
  }

  {
    Table table({"zone_p", "aligned RD", "aligned WR", "striped RD",
                 "striped WR"});
    for (double zone_p : {0.99, 0.95, 0.9, 0.8, 0.7}) {
      const auto aligned = zone_availability(
          protocol, aligned_zones(protocol.tree()), zone_p, 0.99, 20000, rng);
      const auto striped =
          zone_availability(protocol, striped_zones(protocol.tree(), 6),
                            zone_p, 0.99, 20000, rng);
      table.add_row({cell(zone_p, 2), cell(aligned.read, 3),
                     cell(aligned.write, 3), cell(striped.read, 3),
                     cell(striped.write, 3)});
    }
    std::cout << "\nMonte-Carlo availability (zones fail together, replicas "
                 "99% reliable):\n";
    table.print_text(std::cout);
    std::cout
        << "\nAligned placement keeps writes near-perfect (a zone outage is\n"
        << "one whole level, and writes only need SOME level) at the cost\n"
        << "of reads; striping inverts the trade-off. Choose placement by\n"
        << "the same read/write mix that chose the tree shape.\n";
  }
  return 0;
}
