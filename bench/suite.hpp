// The shared, shardable bench units behind bench_workload_sim,
// bench_sim_throughput and bench_all. Every function here is a pure
// function of its shard index — it builds its own Cluster (or evaluates a
// closed form) from fixed seeds and touches no shared state — so the run
// driver can execute any subset concurrently and the merged output is
// byte-identical at every `--jobs` count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace atrcp::benchio {

/// What one shard of a bench unit produced: a deterministic payload chunk
/// (digested into BENCH_ATRCP.json) and the committed-transaction count
/// (the throughput numerator). Analytic shards leave committed at 0.
struct ShardResult {
  std::string payload;
  std::uint64_t committed = 0;
};

// -- E11 workload grid (n ~ 63) ---------------------------------------------

/// Number of (read fraction x configuration) cells in the E11 grid.
std::size_t workload_cell_count();

/// Read fraction of cell `index` (grid is fraction-major).
double workload_cell_fraction(std::size_t index);

/// One E11 grid cell: preformatted table cells {config, commit rate,
/// latency, messages, busiest replica share}, plus the committed count via
/// *committed when non-null.
std::vector<std::string> workload_cell_row(std::size_t index,
                                           std::uint64_t* committed = nullptr);

/// The Table 1 (1-3-5) fixed-seed metrics block validating Facts
/// 3.2.1/3.2.2 ("metrics " line of bench_workload_sim).
ShardResult table1_metrics_block();

/// The 64-site ARBITRARY site-load block validating Facts 3.2.3/3.2.4
/// ("load " line of bench_workload_sim).
ShardResult load64_block();

// -- parallel simulation throughput (shared with bench_sim_throughput) ------

/// One independent fixed-seed cluster running a mixed workload; payload is
/// a one-line summary, committed is the commit count. Shards differ only
/// in their seeds, so any shard set is reproducible.
ShardResult throughput_shard(std::size_t shard);

// -- analytic parameter points ----------------------------------------------

/// Figure 2-4 series point: all six §4 configurations evaluated at one
/// (n, p) grid index; payload is a deterministic CSV row block.
ShardResult figure_point(std::size_t index);
std::size_t figure_point_count();

/// E12 availability point: one (read|write, p) row at n = 100.
ShardResult psweep_point(std::size_t index);
std::size_t psweep_point_count();

// -- job-granularity batching -------------------------------------------------

/// Number of `block`-sized groups covering `total` indices (the last group
/// may be short). Pair with run_index_block to coarsen a fine-grained
/// per-index unit into fewer, bigger driver jobs.
std::size_t block_count(std::size_t total, std::size_t block);

/// Runs `fn` over the `shard`-th block of consecutive indices and
/// concatenates the results in index order. Concatenating all blocks
/// reproduces the per-index unit's merged payload byte for byte — batching
/// changes only job granularity (one job amortizes its scheduling and
/// setup cost over `block` indices), never the digest.
ShardResult run_index_block(std::size_t total, std::size_t block,
                            std::size_t shard,
                            const std::function<ShardResult(std::size_t)>& fn);

}  // namespace atrcp::benchio
