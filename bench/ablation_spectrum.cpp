// E8 — ablation: the spectrum configurator vs the paper's fixed
// configurations across read fractions. For each workload mix, print the
// frequency-weighted expected load J = fr*E[L_RD] + (1-fr)*E[L_WR] of every
// fixed configuration and of the tree the configurator chose — the chosen
// tree must always sit at (or below) the best fixed configuration of the
// arbitrary family.
#include <iostream>

#include "core/analysis.hpp"
#include "core/config.hpp"
#include "util/table.hpp"

using namespace atrcp;

namespace {

double objective(const ArbitraryAnalysis& a, double fr, double p) {
  return fr * a.expected_read_load(p) + (1 - fr) * a.expected_write_load(p);
}

}  // namespace

int main() {
  std::cout << "=== E8: ablation — spectrum configurator vs fixed shapes "
               "===\n\n";
  const std::size_t n = 100;
  const double p = 0.9;

  Table table({"read fraction", "MOSTLY-READ", "ALGORITHM-1", "MOSTLY-WRITE*",
               "spectrum J", "spectrum shape (levels)"});
  for (double fr : {0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0}) {
    const ArbitraryAnalysis mostly_read(mostly_read_tree(n));
    const ArbitraryAnalysis algo1(algorithm1_tree(n));
    const ArbitraryAnalysis mostly_write(balanced_tree(n, n / 2));
    const ArbitraryTree chosen =
        configure_spectrum(n, {.read_fraction = fr, .availability_p = p});
    const ArbitraryAnalysis chosen_analysis(chosen);
    table.add_row({cell(fr, 2),
                   cell(objective(mostly_read, fr, p), 4),
                   cell(objective(algo1, fr, p), 4),
                   cell(objective(mostly_write, fr, p), 4),
                   cell(objective(chosen_analysis, fr, p), 4),
                   cell(chosen_analysis.physical_level_count())});
  }
  table.print_text(std::cout);
  std::cout << "\n(*balanced n/2-level stand-in for MOSTLY-WRITE at even n.)\n"
            << "\nThe spectrum column must be <= the minimum of the fixed\n"
            << "columns at every read fraction: one protocol, re-shaped per\n"
            << "workload, dominates every fixed configuration — the paper's\n"
            << "'no need to implement a new protocol' claim, quantified.\n";
  return 0;
}
