// E1 — Table 1 and the §3.4 worked example.
//
// Regenerates, from the implementation, every number the paper reports for
// the 8-replica tree of Figure 1 (compact notation "1-3-5"): the per-level
// node accounting of Table 1 and the §3.4 bullets (quorum counts, costs,
// availabilities at p = 0.7, optimal and expected loads). The "paper" column
// prints the value as stated in the paper for direct comparison.
#include <iostream>

#include "core/analysis.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "quorum/resilience.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E1: Table 1 + §3.4 worked example (tree 1-3-5) ===\n\n";

  // Figure 1's exact structure: 9 nodes at level 2, 5 physical + 4 logical.
  const ArbitraryTree tree =
      ArbitraryTree::from_level_counts({{1, 0}, {3, 3}, {9, 5}});
  const ArbitraryAnalysis analysis(tree);

  Table table1({"level k", "m_k", "m_phy_k", "m_log_k"});
  for (std::uint32_t k = 0; k <= tree.height(); ++k) {
    table1.add_row({cell(k), cell(tree.m(k)), cell(tree.m_phy(k)),
                    cell(tree.m_log(k))});
  }
  std::cout << "Table 1 — node accounting per level:\n";
  table1.print_text(std::cout);

  const double p = 0.7;
  Table example({"quantity", "measured", "paper"});
  example.add_row({"n", cell(analysis.replica_count()), "8"});
  example.add_row({"|K_phy|", cell(analysis.physical_level_count()), "2"});
  example.add_row({"m(R)", cell(analysis.read_quorum_count(), 0), "15"});
  example.add_row({"m(W)", cell(analysis.write_quorum_count()), "2"});
  example.add_row({"RD_cost", cell(analysis.read_cost()), "2"});
  example.add_row(
      {"RD_availability(0.7)", cell(analysis.read_availability(p), 2), "0.97"});
  example.add_row({"L_RD", cell(analysis.read_load()), "1/3"});
  example.add_row({"WR_cost (avg)", cell(analysis.write_cost_avg()), "4"});
  example.add_row({"WR_availability(0.7)",
                   cell(analysis.write_availability(p), 2), "0.45"});
  example.add_row({"L_WR", cell(analysis.write_load()), "1/2"});
  example.add_row(
      {"E[L_RD]", cell(analysis.expected_read_load(p), 3), "0.35"});
  example.add_row(
      {"E[L_WR]", cell(analysis.expected_write_load(p), 3), "0.775"});
  std::cout << "\n§3.4 example at p = 0.7:\n";
  example.print_text(std::cout);

  // Cross-check through the live protocol: quorum counts by enumeration.
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-3-5"));
  std::cout << "\nLive enumeration cross-check: "
            << protocol.enumerate_read_quorums(100).size()
            << " read quorums, "
            << protocol.enumerate_write_quorums(100).size()
            << " write quorums (paper: 15 and 2)\n";

  // Exact worst-case fault tolerance via minimum transversals: reads
  // survive any d-1 = 2 crashes, writes any |K_phy|-1 = 1 crash.
  const SetSystem reads(8, protocol.enumerate_read_quorums(100));
  const SetSystem writes(8, protocol.enumerate_write_quorums(100));
  std::cout << "Worst-case resilience: reads tolerate any "
            << resilience(reads) << " crashes (d-1), writes any "
            << resilience(writes) << " (|K_phy|-1)\n";
  return 0;
}
