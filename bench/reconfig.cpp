// bench_reconfig — E23: the cost of an online epoch transition
// (src/reconfig) on a live cluster.
//
// Runs every reconfig unit TWICE — once serial and once through the run
// driver at `--jobs N` — verifies the merged payloads match byte for byte
// (every cell is a pure function of its index, so digests are
// jobs-invariant by construction and this run PROVES it), and writes the
// reconfig section of BENCH_ATRCP.json into the working directory:
//
//   "reconfig"  per-unit {name, shards, committed, payload_bytes, digest}
//   "timing"    the single host-dependent line
//
// Everything except "timing" is byte-identical across runs, hosts and
// --jobs counts. Flags:
//   --jobs N   driver width for the parallel leg (default: hardware)
//   --smoke    tiny txn counts (CI wiring check, not a perf run)
//   --print    dump every unit's payload (the per-cell epoch buckets)
//   --lint F   validate F with obs::json_lint and exit
//
// Exit 0 iff every unit's parallel payload matched its serial reference,
// every cell's inline epoch-tag check passed, every transition completed,
// and the document lints.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/digest.hpp"
#include "driver/pool.hpp"
#include "obs/json_lint.hpp"
#include "reconfig_units.hpp"

using namespace atrcp;
using namespace atrcp::benchio;

namespace {

struct UnitRun {
  std::string payload;
  std::uint64_t committed = 0;
  double wall_ms = 0;
};

UnitRun run_unit(const ReconfigUnit& unit, std::uint64_t txns,
                 const RunDriver& driver) {
  const auto start = std::chrono::steady_clock::now();
  UnitRun out;
  const std::vector<ShardResult> shards = driver.map<ShardResult>(
      unit.shards,
      [&unit, txns](std::size_t shard) { return unit.run(shard, txns); });
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const ShardResult& shard : shards) {
    out.payload += shard.payload;
    out.committed += shard.committed;
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

int lint_file(const char* path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::printf("FAIL cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  if (!json_valid(text.str(), &error)) {
    std::printf("FAIL %s does not lint: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("OK %s lints (%zu bytes)\n", path, text.str().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const RunDriver parallel(parse_jobs_flag(argc, argv));
  const RunDriver serial(1);
  bool smoke = false;
  bool print = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--print") == 0) {
      print = true;
    } else if (std::strcmp(argv[i], "--lint") == 0 && i + 1 < argc) {
      return lint_file(argv[i + 1]);
    } else {
      std::printf(
          "usage: bench_reconfig [--smoke] [--jobs N] [--print] "
          "[--lint <file>]\n");
      return 2;
    }
  }

  bool all_ok = true;
  std::string units_json;
  std::string timing_json;
  std::printf("# bench_reconfig%s: %zu units, jobs=%zu\n",
              smoke ? " (smoke)" : "", reconfig_units().size(),
              parallel.jobs());
  for (const ReconfigUnit& unit : reconfig_units()) {
    const std::uint64_t txns =
        smoke ? (unit.full_txns / 4 > 8 ? unit.full_txns / 4 : 8)
              : unit.full_txns;
    const UnitRun reference = run_unit(unit, txns, serial);
    const UnitRun sharded = run_unit(unit, txns, parallel);
    const bool match = reference.payload == sharded.payload &&
                       reference.committed == sharded.committed;
    const bool clean =
        reference.payload.find("check=FAIL") == std::string::npos &&
        reference.payload.find("recovered=NO") == std::string::npos;
    all_ok = all_ok && match && clean;
    const std::string digest = hex64(fnv1a64(reference.payload));
    std::printf("%-14s %s shards=%zu txns/client=%llu committed=%llu "
                "digest=%s serial=%sms jobs=%sms\n",
                unit.name.c_str(), match && clean ? "OK  " : "FAIL",
                unit.shards, static_cast<unsigned long long>(txns),
                static_cast<unsigned long long>(reference.committed),
                digest.c_str(), fixed(reference.wall_ms, 1).c_str(),
                fixed(sharded.wall_ms, 1).c_str());
    if (!match) {
      std::printf("  parallel payload diverged from the serial reference — "
                  "a cell is not a pure function of its index\n");
    }
    if (!clean) {
      std::printf("  a cell failed its inline epoch-tag check or its "
                  "transition never completed:\n%s", reference.payload.c_str());
    } else if (print) {
      std::printf("%s", reference.payload.c_str());
    }
    if (!units_json.empty()) units_json += ",\n";
    units_json += "{\"name\":\"" + unit.name +
                  "\",\"shards\":" + std::to_string(unit.shards) +
                  ",\"committed\":" + std::to_string(reference.committed) +
                  ",\"payload_bytes\":" +
                  std::to_string(reference.payload.size()) + ",\"digest\":\"" +
                  digest + "\"}";
    if (!timing_json.empty()) timing_json += ",";
    timing_json += "{\"name\":\"" + unit.name +
                   "\",\"serial_ms\":" + fixed(reference.wall_ms, 1) +
                   ",\"parallel_ms\":" + fixed(sharded.wall_ms, 1) + "}";
  }

  std::ostringstream doc;
  doc << "{\n\"bench\":\"atrcp\",\n\"schema\":1,\n\"reconfig\":[\n"
      << units_json << "\n],\n\"timing\":{\"smoke\":"
      << (smoke ? "true" : "false") << ",\"jobs\":" << parallel.jobs()
      << ",\"units\":[" << timing_json << "]}\n}\n";
  std::string error;
  if (!json_valid(doc.str(), &error)) {
    all_ok = false;
    std::printf("FAIL reconfig document does not lint: %s\n", error.c_str());
  }
  const char* path = "BENCH_ATRCP.json";
  std::ofstream file(path, std::ios::binary);
  file << doc.str();
  file.close();
  std::printf("# wrote %s (%zu bytes)\n", file ? path : "(write failed)",
              doc.str().size());
  std::printf(all_ok ? "# bench_reconfig: PASS\n" : "# bench_reconfig: FAIL\n");
  return all_ok ? 0 : 1;
}
