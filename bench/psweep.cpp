// E12 — availability sensitivity: the expected system loads (Eq. 3.2) of
// the six configurations as a function of the per-replica availability p at
// fixed n. The paper states that ARBITRARY's expected loads converge to the
// optimal loads once p > 0.8 (the "stable" regime) while MOSTLY-WRITE's
// read side and MOSTLY-READ's write side destabilize early; this sweep
// makes the whole p-axis visible (the figures in the paper fix p and sweep
// n; this is the complementary cut).
#include <iostream>
#include <vector>

#include "analysis/models.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E12: expected loads vs replica availability p (n ~ 100) "
               "===\n\n";
  const std::size_t n = 100;
  const auto configs = paper_configurations();
  const std::vector<double> ps = {0.55, 0.6, 0.65, 0.7, 0.75,
                                  0.8,  0.85, 0.9, 0.95, 0.99};

  for (const char* which : {"read", "write"}) {
    std::vector<std::string> header = {"p"};
    for (const auto& config : configs) header.push_back(config.name);
    Table table(header);
    for (double p : ps) {
      std::vector<std::string> row = {cell(p, 2)};
      for (const auto& config : configs) {
        const ConfigMetrics m = config.at(n, p);
        row.push_back(cell(std::string(which) == "read"
                               ? m.expected_read_load
                               : m.expected_write_load,
                           4));
      }
      table.add_row(std::move(row));
    }
    std::cout << "expected " << which << " load vs p:\n";
    table.print_text(std::cout);
    std::cout << '\n';
  }

  // Stability transition of ARBITRARY: |E[L] - L| below 10% of L once
  // p exceeds 0.8 (paper §4.2.2's closing remark).
  bool stable_past_08 = true;
  for (double p : {0.82, 0.9, 0.95}) {
    const ConfigMetrics m = arbitrary_metrics(n, p);
    stable_past_08 &=
        m.expected_read_load <= m.read_load * 1.1 + 0.01 &&
        m.expected_write_load <= m.write_load * 1.1 + 0.05;
  }
  std::cout << "ARBITRARY expected loads ~ optimal loads for p > 0.8 -> "
            << (stable_past_08 ? "OK" : "MISMATCH") << '\n';
  return 0;
}
