// E12 — availability sensitivity: the expected system loads (Eq. 3.2) of
// the six configurations as a function of the per-replica availability p at
// fixed n. The paper states that ARBITRARY's expected loads converge to the
// optimal loads once p > 0.8 (the "stable" regime) while MOSTLY-WRITE's
// read side and MOSTLY-READ's write side destabilize early; this sweep
// makes the whole p-axis visible (the figures in the paper fix p and sweep
// n; this is the complementary cut).
//
// Each (read|write, p) row is an independent parameter point, sharded
// across `--jobs N` workers and merged in row order — byte-identical output
// at every worker count.
#include <iostream>
#include <vector>

#include "analysis/models.hpp"
#include "driver/pool.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main(int argc, char** argv) {
  const RunDriver driver(parse_jobs_flag(argc, argv));
  std::cout << "=== E12: expected loads vs replica availability p (n ~ 100) "
               "===\n\n";
  const std::size_t n = 100;
  const auto configs = paper_configurations();
  const std::vector<double> ps = {0.55, 0.6, 0.65, 0.7, 0.75,
                                  0.8,  0.85, 0.9, 0.95, 0.99};

  // Row job (kind, p) -> preformatted cells; kind 0 = read, 1 = write.
  const std::vector<std::vector<std::string>> rows =
      driver.map<std::vector<std::string>>(
          2 * ps.size(), [&](std::size_t job) {
            const bool read_side = job < ps.size();
            const double p = ps[job % ps.size()];
            std::vector<std::string> row = {cell(p, 2)};
            for (const auto& config : configs) {
              const ConfigMetrics m = config.at(n, p);
              row.push_back(cell(read_side ? m.expected_read_load
                                           : m.expected_write_load,
                                 4));
            }
            return row;
          });

  for (const char* which : {"read", "write"}) {
    std::vector<std::string> header = {"p"};
    for (const auto& config : configs) header.push_back(config.name);
    Table table(header);
    const std::size_t base = std::string(which) == "read" ? 0 : ps.size();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      table.add_row(std::vector<std::string>(rows[base + i]));
    }
    std::cout << "expected " << which << " load vs p:\n";
    table.print_text(std::cout);
    std::cout << '\n';
  }

  // Stability transition of ARBITRARY: |E[L] - L| below 10% of L once
  // p exceeds 0.8 (paper §4.2.2's closing remark).
  bool stable_past_08 = true;
  for (double p : {0.82, 0.9, 0.95}) {
    const ConfigMetrics m = arbitrary_metrics(n, p);
    stable_past_08 &=
        m.expected_read_load <= m.read_load * 1.1 + 0.01 &&
        m.expected_write_load <= m.write_load * 1.1 + 0.05;
  }
  std::cout << "ARBITRARY expected loads ~ optimal loads for p > 0.8 -> "
            << (stable_past_08 ? "OK" : "MISMATCH") << '\n';
  return 0;
}
