// E5 — §3.3's availability behaviour of the ARBITRARY configuration:
//  * RD/WR availability vs n at fixed p and vs p at fixed n;
//  * the n -> infinity limits  WR_av -> 1-(1-p^4)^7  and
//    RD_av -> (1-(1-p)^4)^7;
//  * the claim that for p > 0.8 both availabilities are ~1;
//  * closed forms cross-checked against Monte-Carlo live assembly.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/empirical.hpp"
#include "core/analysis.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E5: availability of ARBITRARY (Algorithm 1) ===\n\n";

  {
    Table table({"n", "RD_av(0.7)", "WR_av(0.7)", "RD_av(0.9)", "WR_av(0.9)"});
    for (std::size_t n : {70u, 100u, 200u, 400u, 1000u, 4000u, 10000u}) {
      const ArbitraryAnalysis a(algorithm1_tree(n));
      table.add_row({cell(n), cell(a.read_availability(0.7), 4),
                     cell(a.write_availability(0.7), 4),
                     cell(a.read_availability(0.9), 4),
                     cell(a.write_availability(0.9), 4)});
    }
    std::cout << "availability vs n:\n";
    table.print_text(std::cout);
  }

  {
    Table table({"p", "RD_av (n=400)", "RD limit", "WR_av (n=400)",
                 "WR limit", "both ~1?"});
    const ArbitraryAnalysis a(algorithm1_tree(400));
    for (double p : {0.55, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}) {
      const double rd_limit = std::pow(1 - std::pow(1 - p, 4), 7);
      const double wr_limit = 1 - std::pow(1 - std::pow(p, 4), 7);
      const bool near_one =
          a.read_availability(p) > 0.95 && a.write_availability(p) > 0.95;
      table.add_row({cell(p, 2), cell(a.read_availability(p), 4),
                     cell(rd_limit, 4), cell(a.write_availability(p), 4),
                     cell(wr_limit, 4), near_one ? "yes" : "no"});
    }
    std::cout << "\navailability vs p and the n->inf limits (§3.3):\n";
    table.print_text(std::cout);
    std::cout << "(paper: for p > 0.8 both availabilities ~ 1)\n";
  }

  {
    // Monte-Carlo cross-check of the closed forms through live assembly.
    Table table({"n", "p", "RD closed-form", "RD measured", "WR closed-form",
                 "WR measured"});
    Rng rng(2024);
    for (std::size_t n : {70u, 150u}) {
      auto protocol = std::make_unique<ArbitraryProtocol>(algorithm1_tree(n));
      for (double p : {0.7, 0.85}) {
        const auto measured = measured_availability(*protocol, p, 20000, rng);
        table.add_row({cell(n), cell(p, 2),
                       cell(protocol->read_availability(p), 4),
                       cell(measured.read, 4),
                       cell(protocol->write_availability(p), 4),
                       cell(measured.write, 4)});
      }
    }
    std::cout << "\nclosed form vs Monte-Carlo live assembly (20k trials):\n";
    table.print_text(std::cout);
  }
  return 0;
}
