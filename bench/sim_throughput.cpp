// E9 — google-benchmark microbenchmarks of the substrate: quorum assembly
// for each protocol, tree construction, the LP solver, scheduler and
// network throughput, and end-to-end simulated transactions per second.
// After the benchmarks, main() runs one fixed-seed Table 1 workload and
// prints its deterministic metrics block (see metrics_block.hpp) — the
// timing numbers above it vary with the host, the block never does.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "driver/pool.hpp"
#include "metrics_block.hpp"
#include "suite.hpp"
#include "protocols/hqc.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "quorum/lp.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

void BM_TreeConstructionAlgorithm1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm1_tree(n));
  }
}
BENCHMARK(BM_TreeConstructionAlgorithm1)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ArbitraryReadQuorumAssembly(benchmark::State& state) {
  const ArbitraryProtocol protocol(algorithm1_tree(
      static_cast<std::size_t>(state.range(0))));
  const FailureSet none(protocol.universe_size());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.assemble_read_quorum(none, rng));
  }
}
BENCHMARK(BM_ArbitraryReadQuorumAssembly)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ArbitraryWriteQuorumAssembly(benchmark::State& state) {
  const ArbitraryProtocol protocol(algorithm1_tree(
      static_cast<std::size_t>(state.range(0))));
  const FailureSet none(protocol.universe_size());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.assemble_write_quorum(none, rng));
  }
}
BENCHMARK(BM_ArbitraryWriteQuorumAssembly)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TreeQuorumAssemblyUnderFailures(benchmark::State& state) {
  const TreeQuorum protocol(static_cast<std::uint32_t>(state.range(0)));
  Rng failure_rng(2);
  FailureSet failures(protocol.universe_size());
  for (ReplicaId id = 0; id < protocol.universe_size(); ++id) {
    if (failure_rng.chance(0.2)) failures.fail(id);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.assemble_read_quorum(failures, rng));
  }
}
BENCHMARK(BM_TreeQuorumAssemblyUnderFailures)->Arg(6)->Arg(10)->Arg(14);

void BM_HqcAssembly(benchmark::State& state) {
  const Hqc protocol(static_cast<std::uint32_t>(state.range(0)));
  const FailureSet none(protocol.universe_size());
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.assemble_read_quorum(none, rng));
  }
}
BENCHMARK(BM_HqcAssembly)->Arg(3)->Arg(5)->Arg(7);

void BM_OptimalLoadLp(benchmark::State& state) {
  // LP sized by the read-quorum system of a small arbitrary tree.
  const ArbitraryProtocol protocol(
      balanced_tree(static_cast<std::size_t>(state.range(0)), 3));
  const SetSystem reads(protocol.universe_size(),
                        protocol.enumerate_read_quorums(100000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_load(reads));
  }
  state.counters["quorums"] = static_cast<double>(reads.set_count());
}
BENCHMARK(BM_OptimalLoadLp)->Arg(9)->Arg(15)->Arg(21);

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler scheduler;
    for (int i = 0; i < 1000; ++i) {
      scheduler.schedule_at(static_cast<SimTime>(i), [] {});
    }
    scheduler.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerEventThroughput);

void BM_SimulatedTransactions(benchmark::State& state) {
  for (auto _ : state) {
    ClusterOptions options;
    options.link = LinkParams{.base_latency = 10, .jitter = 0};
    Cluster cluster(make_arbitrary(static_cast<std::size_t>(state.range(0))),
                    options);
    for (Key k = 0; k < 20; ++k) {
      benchmark::DoNotOptimize(cluster.write_sync(0, k, "v"));
      benchmark::DoNotOptimize(cluster.read_sync(0, k));
    }
  }
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_SimulatedTransactions)->Arg(40)->Arg(100);

void BM_SpectrumConfigurator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        configure_spectrum(n, {.read_fraction = 0.6, .availability_p = 0.9}));
  }
}
BENCHMARK(BM_SpectrumConfigurator)->Arg(100)->Arg(400)->Arg(1000);

}  // namespace
}  // namespace atrcp

int main(int argc, char** argv) {
  using namespace atrcp;
  // --jobs is ours, not google-benchmark's: consume it before Initialize.
  const RunDriver driver(parse_jobs_flag(argc, argv));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Parallel simulation throughput: independent fixed-seed clusters (one
  // shard each, see benchio::throughput_shard) fanned out across the
  // driver's workers. The committed count is deterministic — every shard's
  // simulation is a pure function of its seed — while txns/sec measures
  // this host at the chosen --jobs; bench_all digests the same shards into
  // BENCH_ATRCP.json.
  {
    constexpr std::size_t kShards = 8;
    const auto wall_start = std::chrono::steady_clock::now();
    const std::vector<benchio::ShardResult> shards =
        driver.map<benchio::ShardResult>(kShards, benchio::throughput_shard);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    std::uint64_t total = 0;
    for (const benchio::ShardResult& shard : shards) total += shard.committed;
    std::cout << "parallel_sim: shards=" << kShards
              << " jobs=" << driver.jobs() << " committed=" << total
              << " txns_per_sec="
              << static_cast<std::uint64_t>(static_cast<double>(total) /
                                            (wall_s > 0 ? wall_s : 1e-9))
              << '\n';
  }

  // Deterministic epilogue: Table 1 tree (1-3-5) at p = 0, fixed seed.
  // Measured mean read-quorum size must equal |K_phy| = 2 exactly; the
  // write mean approaches n / |K_phy| = 4 (Facts 3.2.1/3.2.2).
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  WorkloadOptions workload;
  workload.transactions_per_client = 400;
  workload.read_fraction = 0.5;
  workload.num_keys = 16;
  run_workload(cluster, workload);
  std::cout << "metrics ";
  benchio::emit_metrics_block(std::cout, "table1-p0", cluster);
  std::cout << '\n';
  return 0;
}
