#include "reconfig_units.hpp"

#include <functional>
#include <memory>

#include "check/serializability.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/majority.hpp"
#include "txn/cluster.hpp"
#include "util/check.hpp"

namespace atrcp::benchio {
namespace {

constexpr std::size_t kClients = 4;
constexpr std::size_t kKeys = 4;
constexpr std::size_t kInitialSites = 5;
/// Every cell's transition fires here — mid-run for the full depth, so the
/// three epoch buckets (pure 0 / overlap / pure 1) all see traffic.
constexpr SimTime kTransitionAt = 2'000;

/// The closed-loop mixed workload the explorer uses, self-contained so the
/// bench cells stay pure functions of their seeds.
std::vector<TxnOp> make_txn(Rng& rng, std::size_t client, std::size_t seq) {
  const Key key = static_cast<Key>(rng.below(kKeys));
  std::string value = "c" + std::to_string(client) + "." + std::to_string(seq);
  const std::uint64_t roll = rng.below(10);
  if (roll < 4) return {TxnOp::read(key)};
  if (roll < 7) return {TxnOp::write(key, std::move(value))};
  return {TxnOp::read(key), TxnOp::write(key, std::move(value))};
}

void run_closed_loop(Cluster& cluster, std::uint64_t seed,
                     std::uint64_t txns_per_client) {
  struct State {
    std::vector<Rng> rngs;
    std::vector<std::uint64_t> issued;
    std::function<void(std::size_t)> issue;
  };
  auto st = std::make_shared<State>();
  Rng root(seed);
  for (std::size_t c = 0; c < kClients; ++c) st->rngs.push_back(root.fork());
  st->issued.assign(kClients, 0);
  st->issue = [&cluster, st, txns_per_client](std::size_t c) {
    if (st->issued[c] >= txns_per_client) return;
    const std::size_t seq = st->issued[c]++;
    cluster.client(c).run(make_txn(st->rngs[c], c, seq), [st, c](TxnResult) {
      if (st->issue) st->issue(c);
    });
  };
  for (std::size_t c = 0; c < kClients; ++c) {
    cluster.scheduler().schedule_at(static_cast<SimTime>(1 + 37 * c),
                                    [st, c] {
                                      if (st->issue) st->issue(c);
                                    });
  }
  cluster.settle();
  st->issue = nullptr;
}

ClusterOptions bench_cluster_options(std::uint64_t seed) {
  ClusterOptions copt;
  copt.seed = seed;
  copt.link = LinkParams{.base_latency = 10, .jitter = 3};
  copt.clients = kClients;
  copt.record_history = true;
  copt.coordinator.request_timeout = 2'000;
  copt.coordinator.lock_timeout = 20'000;
  copt.coordinator.commit_retry_interval = 1'000;
  copt.coordinator.max_commit_retries = 1'000'000;
  copt.enable_reconfig = true;
  copt.site_pool = kInitialSites + 1;  // headroom for the add-site target
  return copt;
}

struct Target {
  const char* label;
  std::unique_ptr<ReplicaControlProtocol> (*make)();
};

/// The four transition classes: same-universe reshape to the same rule,
/// same-universe re-tree, add a site, remove a site.
constexpr Target kTargets[] = {
    {"maj5", [] { return std::unique_ptr<ReplicaControlProtocol>(
                      std::make_unique<MajorityQuorum>(5)); }},
    {"tree5L2", [] { return std::unique_ptr<ReplicaControlProtocol>(
                         std::make_unique<ArbitraryProtocol>(
                             balanced_tree(5, 2))); }},
    {"maj6", [] { return std::unique_ptr<ReplicaControlProtocol>(
                      std::make_unique<MajorityQuorum>(6)); }},
    {"maj4", [] { return std::unique_ptr<ReplicaControlProtocol>(
                      std::make_unique<MajorityQuorum>(4)); }},
};
constexpr std::size_t kTargetCount = sizeof(kTargets) / sizeof(kTargets[0]);

/// One epoch bucket: transactions tagged (epoch, overlap) alike.
struct Bucket {
  std::uint64_t count = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t latency_sum = 0;

  void add(const HistoryTxn& txn) {
    ++count;
    if (txn.outcome == HistoryOutcome::kCommitted) ++committed;
    if (txn.outcome == HistoryOutcome::kAborted) ++aborted;
    latency_sum += txn.span.end - txn.span.begin;
  }
  std::string to_string() const {
    return "n=" + std::to_string(count) +
           " commit=" + std::to_string(committed) +
           " abort=" + std::to_string(aborted) +
           " mean_us=" + std::to_string(count > 0 ? latency_sum / count : 0);
  }
};

std::string phase_timeline(const ReconfigManager& manager) {
  std::string out;
  for (const ReconfigManager::LogEntry& entry : manager.transition_log()) {
    if (!out.empty()) out += ",";
    if (entry.crash) {
      out += "crash@" + std::to_string(entry.at);
    } else if (entry.recover) {
      out += "recover@" + std::to_string(entry.at);
    } else {
      out += std::string(ReconfigManager::phase_name(entry.phase)) + "@" +
             std::to_string(entry.at);
    }
  }
  return out;
}

std::string epoch_check_stamp(const Cluster& cluster) {
  const CheckResult epochs = check_epoch_tags(cluster.history().txns());
  return epochs.ok ? "check=OK" : "check=FAIL\n" + epochs.report;
}

ShardResult phase_latency_cell(std::size_t shard,
                               std::uint64_t txns_per_client) {
  ATRCP_CHECK(shard < kTargetCount);
  const Target& target = kTargets[shard];
  auto cluster_protocol = std::make_unique<MajorityQuorum>(kInitialSites);
  Cluster cluster(std::move(cluster_protocol),
                  bench_cluster_options(0xEC0 + shard));

  auto holder = std::make_shared<std::unique_ptr<ReplicaControlProtocol>>(
      target.make());
  cluster.scheduler().schedule_at(kTransitionAt, [&cluster, holder] {
    cluster.start_reconfiguration(std::move(*holder));
  });
  run_closed_loop(cluster, 0xBEC0 + shard, txns_per_client);

  ShardResult out;
  Bucket pre, overlap, post;
  for (const HistoryTxn& txn : cluster.history().txns()) {
    if (txn.span.epoch_overlap != 0) {
      overlap.add(txn);
    } else if (txn.span.epoch == 0) {
      pre.add(txn);
    } else {
      post.add(txn);
    }
    out.committed += txn.outcome == HistoryOutcome::kCommitted ? 1 : 0;
  }
  const ReconfigManager& manager = *cluster.reconfig();
  out.payload = std::string(target.label) + " pre[" + pre.to_string() +
                "] ovl[" + overlap.to_string() + "] post[" +
                post.to_string() + "] completed=" +
                std::to_string(manager.transitions_completed()) + " phases=" +
                phase_timeline(manager) + " " + epoch_check_stamp(cluster) +
                "\n";
  return out;
}

ShardResult crash_recovery_cell(std::size_t shard,
                                std::uint64_t txns_per_client) {
  ATRCP_CHECK(shard < 5);
  const auto crash_phase =
      static_cast<ReconfigManager::Phase>(shard + 1);  // kPrepare..kRetire
  auto cluster_protocol = std::make_unique<MajorityQuorum>(kInitialSites);
  ClusterOptions copt = bench_cluster_options(0xC7A + shard);
  copt.reconfig.crash_phase = static_cast<int>(crash_phase);
  // Shorter than one network round trip, so the crash lands while the
  // target phase is still collecting acks (the fast phases finish in
  // ~20-50 sim-us; a longer delay would fire after the transition moved
  // on and the crash would silently no-op).
  copt.reconfig.crash_delay = 10;
  copt.reconfig.crash_downtime = 1'500;
  Cluster cluster(std::move(cluster_protocol), copt);

  // The add-site target exercises every phase, sync + spare bring-up
  // included, under the crash.
  auto holder = std::make_shared<std::unique_ptr<ReplicaControlProtocol>>(
      std::make_unique<MajorityQuorum>(kInitialSites + 1));
  cluster.scheduler().schedule_at(kTransitionAt, [&cluster, holder] {
    cluster.start_reconfiguration(std::move(*holder));
  });
  // Pin one overlap view through the EpochSource so the kRetire drain has
  // something to wait on even when the workload (smoke depth) finished
  // before the transition fired — otherwise retire completes synchronously
  // and a retire-phase crash would no-op.
  struct Pin {
    Cluster& cluster;
    EpochView view{};
    std::function<void()> poll;
  };
  auto pin = std::make_shared<Pin>(Pin{cluster});
  pin->poll = [pin] {
    ReconfigManager& manager = *pin->cluster.reconfig();
    if (manager.phase() == ReconfigManager::Phase::kOverlap ||
        manager.phase() == ReconfigManager::Phase::kSync) {
      pin->view = manager.acquire_view();
      pin->cluster.scheduler().schedule_after(300, [pin] {
        pin->cluster.reconfig()->release_view(pin->view);
      });
    } else if (manager.transitions_completed() == 0) {
      pin->cluster.scheduler().schedule_after(5, pin->poll);
    }
  };
  cluster.scheduler().schedule_at(kTransitionAt, [pin] { pin->poll(); });
  run_closed_loop(cluster, 0xBC7A + shard, txns_per_client);
  pin->poll = nullptr;

  ShardResult out;
  std::uint64_t aborted = 0;
  for (const HistoryTxn& txn : cluster.history().txns()) {
    if (txn.outcome == HistoryOutcome::kCommitted) ++out.committed;
    if (txn.outcome == HistoryOutcome::kAborted) ++aborted;
  }
  const ReconfigManager& manager = *cluster.reconfig();
  // "recovered" demands the crash actually fired mid-transition (a delay
  // that overshoots the phase would no-op and complete vacuously), the
  // manager came back, and the transition still finished.
  bool crash_seen = false;
  bool recover_seen = false;
  for (const auto& entry : manager.transition_log()) {
    crash_seen = crash_seen || entry.crash;
    recover_seen = recover_seen || entry.recover;
  }
  const bool done = crash_seen && recover_seen && !manager.active() &&
                    manager.transitions_completed() == 1;
  out.payload = std::string("crash_at=") +
                ReconfigManager::phase_name(crash_phase) +
                (done ? " recovered=yes" : " recovered=NO") + " commit=" +
                std::to_string(out.committed) + " abort=" +
                std::to_string(aborted) + " phases=" +
                phase_timeline(manager) + " " + epoch_check_stamp(cluster) +
                "\n";
  return out;
}

}  // namespace

const std::vector<ReconfigUnit>& reconfig_units() {
  static const std::vector<ReconfigUnit> units = [] {
    std::vector<ReconfigUnit> out;
    out.push_back({"phase_latency", kTargetCount, 48, phase_latency_cell});
    out.push_back({"crash_recovery", 5, 48, crash_recovery_cell});
    return out;
  }();
  return units;
}

}  // namespace atrcp::benchio
