// Cluster-facing adapter for the "metrics" JSON block. The emitter itself
// — formatting, escape path, determinism contract — lives in
// src/obs/metrics_block.hpp so bench_all, the per-bench binaries and the
// driver determinism tests share one implementation; this header only
// bridges the layering gap (obs cannot see Cluster) by extracting the
// block's inputs from a settled cluster.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics_block.hpp"
#include "obs/site_load.hpp"
#include "protocols/protocol.hpp"
#include "txn/cluster.hpp"

namespace atrcp::benchio {

/// Measured mean assembled-quorum size; the implementation (and its NaN
/// safety when attempts == failures) lives in obs/site_load.cpp where the
/// obs tests can pin it down.
using atrcp::measured_mean_quorum;

/// Fills MetricsBlockInputs from the cluster's protocol, span log and
/// registry. Shared by the emit/string helpers below and by callers that
/// want to digest the block (bench_all).
inline MetricsBlockInputs metrics_block_inputs(const std::string& label,
                                               const Cluster& cluster) {
  const ReplicaControlProtocol& protocol = cluster.protocol();
  MetricsBlockInputs in;
  in.label = label;
  in.protocol = protocol.name();
  in.read_predicted = protocol.read_cost();
  in.write_predicted = protocol.write_cost();
  in.spans = &cluster.spans();
  in.registry = &cluster.metrics();
  return in;
}

/// Prints the block on one line (see obs/metrics_block.hpp for the format).
/// Under a fixed seed two runs print byte-identical blocks.
inline void emit_metrics_block(std::ostream& os, const std::string& label,
                               const Cluster& cluster) {
  emit_metrics_block_json(os, metrics_block_inputs(label, cluster));
}

/// The same block as a string, for sharded benches that render per-job text
/// off the driver and merge in job-index order.
inline std::string metrics_block(const std::string& label,
                                 const Cluster& cluster) {
  return metrics_block_json(metrics_block_inputs(label, cluster));
}

}  // namespace atrcp::benchio
