// Shared by the executed-workload benches: the "metrics" JSON block.
//
// Emits one JSON object per instrumented cluster run — the full
// MetricsRegistry snapshot plus the headline comparison the obs layer
// exists for: measured mean read/write quorum size (from the
// quorum.<name>.* counters) against the analytic predictions of
// Facts 3.2.1/3.2.2 (read cost |K_phy|, average write cost n/|K_phy|).
// Everything routes through MetricsRegistry::to_json / format_double, so
// two runs under the same seed print byte-identical blocks.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/site_load.hpp"
#include "obs/span.hpp"
#include "protocols/protocol.hpp"
#include "txn/cluster.hpp"

namespace atrcp::benchio {

/// Measured mean assembled-quorum size; the implementation (and its NaN
/// safety when attempts == failures) lives in obs/site_load.cpp where the
/// obs tests can pin it down.
using atrcp::measured_mean_quorum;

/// Prints the block on one line:
///   {"label":...,"protocol":...,
///    "quorum_cost":{"read":{"measured":...,"predicted":...},"write":{...}},
///    "spans":{"recorded":...,"retained":...,"latency_us":{"p50":...,
///    "p95":...,"p99":...},"slowest":{...}},"registry":{...}}
/// `predicted` is the protocol's analytic read_cost()/write_cost(); a
/// measured value that never materialized serializes as null. The spans
/// object snapshots the cluster's TxnSpanLog (p50/p95/p99 over retained
/// spans plus the single slowest transaction).
inline void emit_metrics_block(std::ostream& os, const std::string& label,
                               const Cluster& cluster) {
  const ReplicaControlProtocol& protocol = cluster.protocol();
  const MetricsRegistry& metrics = cluster.metrics();
  os << "{\"label\":\"" << json_escape(label) << "\",\"protocol\":\""
     << json_escape(protocol.name()) << "\",\"quorum_cost\":{\"read\":{"
     << "\"measured\":"
     << format_double(measured_mean_quorum(metrics, protocol.name(), "read"))
     << ",\"predicted\":" << format_double(protocol.read_cost())
     << "},\"write\":{\"measured\":"
     << format_double(measured_mean_quorum(metrics, protocol.name(), "write"))
     << ",\"predicted\":" << format_double(protocol.write_cost())
     << "}},\"spans\":" << summarize_spans(cluster.spans()).to_json()
     << ",\"registry\":";
  metrics.to_json(os);
  os << "}";
}

}  // namespace atrcp::benchio
