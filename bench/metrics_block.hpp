// Shared by the executed-workload benches: the "metrics" JSON block.
//
// Emits one JSON object per instrumented cluster run — the full
// MetricsRegistry snapshot plus the headline comparison the obs layer
// exists for: measured mean read/write quorum size (from the
// quorum.<name>.* counters) against the analytic predictions of
// Facts 3.2.1/3.2.2 (read cost |K_phy|, average write cost n/|K_phy|).
// Everything routes through MetricsRegistry::to_json / format_double, so
// two runs under the same seed print byte-identical blocks.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "protocols/protocol.hpp"
#include "txn/cluster.hpp"

namespace atrcp::benchio {

/// Measured mean assembled-quorum size for `kind` ("read" or "write"):
/// members / (attempts - failures). NaN when the run never assembled one.
inline double measured_mean_quorum(const MetricsRegistry& metrics,
                                   const std::string& protocol_name,
                                   const std::string& kind) {
  const std::string prefix = "quorum." + protocol_name + "." + kind + ".";
  const Counter* attempts = metrics.find_counter(prefix + "attempts");
  const Counter* failures = metrics.find_counter(prefix + "failures");
  const Counter* members = metrics.find_counter(prefix + "members");
  if (attempts == nullptr || members == nullptr) return std::nan("");
  const std::uint64_t failed = failures == nullptr ? 0 : failures->value();
  const std::uint64_t assembled = attempts->value() - failed;
  if (assembled == 0) return std::nan("");
  return static_cast<double>(members->value()) /
         static_cast<double>(assembled);
}

/// Prints the block on one line:
///   {"label":...,"protocol":...,
///    "quorum_cost":{"read":{"measured":...,"predicted":...},"write":{...}},
///    "spans_recorded":...,"registry":{...}}
/// `predicted` is the protocol's analytic read_cost()/write_cost(); a
/// measured value that never materialized serializes as null.
inline void emit_metrics_block(std::ostream& os, const std::string& label,
                               const Cluster& cluster) {
  const ReplicaControlProtocol& protocol = cluster.protocol();
  const MetricsRegistry& metrics = cluster.metrics();
  os << "{\"label\":\"" << json_escape(label) << "\",\"protocol\":\""
     << json_escape(protocol.name()) << "\",\"quorum_cost\":{\"read\":{"
     << "\"measured\":"
     << format_double(measured_mean_quorum(metrics, protocol.name(), "read"))
     << ",\"predicted\":" << format_double(protocol.read_cost())
     << "},\"write\":{\"measured\":"
     << format_double(measured_mean_quorum(metrics, protocol.name(), "write"))
     << ",\"predicted\":" << format_double(protocol.write_cost())
     << "}},\"spans_recorded\":" << cluster.spans().total_recorded()
     << ",\"registry\":";
  metrics.to_json(os);
  os << "}";
}

}  // namespace atrcp::benchio
