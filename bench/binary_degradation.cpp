// E13 — ablation on the BINARY baseline: [2]'s quorum size "varies from
// log n to (n+1)/2" as failures accumulate. We measure the mean and p99
// assembled quorum size of the Agrawal–El Abbadi protocol as the fraction
// of crashed replicas grows, alongside its availability — making the
// degradation curve behind the paper's §1/§4 cost discussion visible, and
// contrasting it with the ARBITRARY configuration whose quorum sizes are
// failure-independent (a read is always |K_phy| members, a write always a
// full level).
#include <iostream>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/tree_quorum.hpp"
#include "quorum/availability.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E13: BINARY quorum-size degradation under failures ===\n\n";
  const TreeQuorum binary(6);  // 127 replicas
  const auto arbitrary = make_arbitrary(127);
  Rng rng(99);

  Table table({"crash fraction", "BINARY avail", "BINARY mean |Q|",
               "BINARY p99 |Q|", "ARB read |Q|", "ARB write mean |Q|"});
  for (double crash_fraction : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    SampleSummary binary_sizes;
    SampleSummary arb_write_sizes;
    std::size_t binary_ok = 0;
    std::size_t trials = 0;
    double arb_read_size = 0.0;
    for (int t = 0; t < 3000; ++t) {
      const FailureSet failures =
          sample_failures(127, 1.0 - crash_fraction, rng);
      ++trials;
      if (const auto q = binary.assemble_read_quorum(failures, rng)) {
        ++binary_ok;
        binary_sizes.add(static_cast<double>(q->size()));
      }
      if (const auto q = arbitrary->assemble_read_quorum(failures, rng)) {
        arb_read_size = static_cast<double>(q->size());
      }
      if (const auto q = arbitrary->assemble_write_quorum(failures, rng)) {
        arb_write_sizes.add(static_cast<double>(q->size()));
      }
    }
    table.add_row(
        {cell(crash_fraction, 2),
         cell(static_cast<double>(binary_ok) / trials, 3),
         binary_sizes.count() ? cell(binary_sizes.mean(), 1) : "-",
         binary_sizes.count() ? cell(binary_sizes.percentile(0.99), 0) : "-",
         cell(arb_read_size, 0),
         arb_write_sizes.count() ? cell(arb_write_sizes.mean(), 1) : "-"});
  }
  table.print_text(std::cout);
  std::cout
      << "\nBINARY starts at log2(n+1) = 7 members and degrades toward the\n"
      << "majority bound 64 as crashes force child-pair replacements — the\n"
      << "paper's 'cost varies from log n to (n+1)/2'. The ARBITRARY\n"
      << "configuration's read size stays fixed at |K_phy| and its write\n"
      << "size at the chosen level's width, failures or not; failures only\n"
      << "affect WHICH members are picked, never HOW MANY.\n";
  return 0;
}
