#include "suite.hpp"

#include <memory>

#include "analysis/models.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "metrics_block.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"
#include "util/table.hpp"

namespace atrcp::benchio {
namespace {

constexpr double kReadFractions[] = {0.95, 0.5, 0.05};
const char* const kConfigs[] = {"MOSTLY-READ", "ARBITRARY", "UNMODIFIED",
                                "MOSTLY-WRITE"};
constexpr std::size_t kConfigCount = std::size(kConfigs);

std::unique_ptr<ArbitraryProtocol> make_config(const std::string& name,
                                               std::size_t n) {
  if (name == "MOSTLY-READ") return make_mostly_read(n);
  if (name == "MOSTLY-WRITE") return make_mostly_write(n | 1);
  if (name == "ARBITRARY") return make_arbitrary(n);
  return std::make_unique<ArbitraryProtocol>(
      unmodified_tree(5), "UNMODIFIED");  // 63 replicas
}

}  // namespace

std::size_t workload_cell_count() {
  return std::size(kReadFractions) * kConfigCount;
}

double workload_cell_fraction(std::size_t index) {
  return kReadFractions[index / kConfigCount];
}

std::vector<std::string> workload_cell_row(std::size_t index,
                                           std::uint64_t* committed) {
  const std::size_t n = 63;
  const double read_fraction = workload_cell_fraction(index);
  const std::string name = kConfigs[index % kConfigCount];
  ClusterOptions options;
  options.clients = 4;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(make_config(name, n), options);
  WorkloadOptions workload;
  workload.transactions_per_client = 150;
  workload.read_fraction = read_fraction;
  workload.num_keys = 32;
  const WorkloadStats stats = run_workload(cluster, workload);
  if (committed != nullptr) *committed = stats.committed;
  return {name, cell(stats.commit_rate(), 3),
          cell(stats.mean_latency_us, 0) + " / " +
              cell(stats.latency.percentile(0.95), 0) + " / " +
              cell(stats.latency.percentile(0.99), 0),
          cell(stats.messages_sent), cell(stats.max_replica_share(), 4)};
}

ShardResult table1_metrics_block() {
  // Table 1 tree (1-3-5) executed at p = 0: the measured mean read-quorum
  // size must equal |K_phy| = 2 exactly (one node per physical level;
  // version pre-reads included) and the measured mean write-quorum size
  // approaches n / |K_phy| = 4 (uniform pick over the level sizes {3, 5})
  // — Facts 3.2.1/3.2.2 executed. Fixed seed: byte-identical across runs.
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  WorkloadOptions workload;
  workload.transactions_per_client = 400;
  workload.read_fraction = 0.5;
  workload.num_keys = 16;
  const WorkloadStats stats = run_workload(cluster, workload);
  return {metrics_block("table1-p0", cluster), stats.committed};
}

ShardResult load64_block() {
  // A healthy 64-site ARBITRARY run: the busiest site's measured read share
  // must stay within the analytic optimum 1/d = 1/4 and the busiest write
  // share near 1/|K_phy| = 1/8 = 1/sqrt(64) — Facts 3.2.3/3.2.4 executed.
  // Fixed seed: byte-identical output.
  std::unique_ptr<ArbitraryProtocol> protocol = make_arbitrary(64);
  SiteLoadOptions load_options;
  load_options.protocol = protocol->name();
  load_options.universe = protocol->universe_size();
  load_options.analytic_read_load = protocol->read_load();
  load_options.analytic_write_load = protocol->write_load();
  const ArbitraryTree& tree = protocol->tree();
  for (const std::uint32_t level : tree.physical_levels()) {
    load_options.levels.push_back(tree.replicas_at_level(level));
  }
  ClusterOptions options;
  options.clients = 4;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(std::move(protocol), options);
  WorkloadOptions workload;
  workload.transactions_per_client = 300;
  workload.read_fraction = 0.5;
  workload.num_keys = 32;
  const WorkloadStats stats = run_workload(cluster, workload);
  return {collect_site_load(cluster.metrics(), load_options).to_json(),
          stats.committed};
}

ShardResult throughput_shard(std::size_t shard) {
  ClusterOptions options;
  options.seed = 1 + shard;
  options.clients = 4;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(make_arbitrary(40), options);
  WorkloadOptions workload;
  workload.transactions_per_client = 120;
  workload.read_fraction = 0.5;
  workload.num_keys = 32;
  workload.seed = 42 + shard;
  const WorkloadStats stats = run_workload(cluster, workload);
  return {"shard=" + std::to_string(shard) +
              " committed=" + std::to_string(stats.committed) +
              " aborted=" + std::to_string(stats.aborted) +
              " messages=" + std::to_string(stats.messages_sent) + "\n",
          stats.committed};
}

namespace {

// The Figure 2-4 n-axis and the availability the figures fix (p = 0.9).
constexpr std::size_t kFigureNs[] = {5,  10,  20,  40,  63,
                                     80, 100, 150, 200, 300};
constexpr double kFigureP = 0.9;

constexpr double kPsweepPs[] = {0.55, 0.6,  0.65, 0.7,  0.75,
                                0.8,  0.85, 0.9,  0.95, 0.99};

}  // namespace

std::size_t figure_point_count() { return std::size(kFigureNs); }

ShardResult figure_point(std::size_t index) {
  const std::size_t n = kFigureNs[index];
  std::string out;
  for (const ConfigModel& config : paper_configurations()) {
    const ConfigMetrics m = config.at(n, kFigureP);
    out += std::to_string(n) + "," + config.name + "," + cell(m.read_cost, 4) +
           "," + cell(m.write_cost, 4) + "," + cell(m.read_load, 4) + "," +
           cell(m.write_load, 4) + "," + cell(m.expected_read_load, 4) + "," +
           cell(m.expected_write_load, 4) + "\n";
  }
  return {std::move(out), 0};
}

std::size_t psweep_point_count() { return 2 * std::size(kPsweepPs); }

std::size_t block_count(std::size_t total, std::size_t block) {
  return block == 0 ? 0 : (total + block - 1) / block;
}

ShardResult run_index_block(std::size_t total, std::size_t block,
                            std::size_t shard,
                            const std::function<ShardResult(std::size_t)>& fn) {
  ShardResult out;
  const std::size_t lo = shard * block;
  const std::size_t hi = lo + block < total ? lo + block : total;
  for (std::size_t i = lo; i < hi; ++i) {
    ShardResult one = fn(i);
    out.payload += one.payload;
    out.committed += one.committed;
  }
  return out;
}

ShardResult psweep_point(std::size_t index) {
  const bool read_side = index < std::size(kPsweepPs);
  const double p = kPsweepPs[index % std::size(kPsweepPs)];
  std::string out = read_side ? "read" : "write";
  out += "," + cell(p, 2);
  for (const ConfigModel& config : paper_configurations()) {
    const ConfigMetrics m = config.at(100, p);
    out += "," +
           cell(read_side ? m.expected_read_load : m.expected_write_load, 4);
  }
  out += "\n";
  return {std::move(out), 0};
}

}  // namespace atrcp::benchio
