// E19 hot-path microbenchmark units — the substrate operations that
// dominate a simulated run: scheduler event churn, network send/deliver,
// and live quorum assembly across the protocol zoo.
//
// Each unit is a set of shards that are pure functions of their index
// (their own Scheduler/Network/protocol, fixed seeds, no shared state), so
// they slot into bench_all's serial-vs-sharded digest machinery unchanged.
// The deterministic payload digests make behaviour changes visible; the
// wall-clock per operation is the number the allocation overhaul moves.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "suite.hpp"

namespace atrcp::benchio {

struct HotpathUnit {
  std::string name;
  std::size_t shards = 0;
  /// Operations executed per shard at full depth; callers scale this down
  /// for smoke runs. ShardResult::committed reports the ops actually run.
  std::uint64_t iters = 0;
  std::function<ShardResult(std::size_t shard, std::uint64_t iters)> run;
};

/// The three hot-path unit families: "sched_churn" (self-rescheduling
/// event storm), "net_ring" (send/deliver loop with metrics attached) and
/// "assemble_zoo" (read+write quorum assembly, one shard per zoo entry,
/// with periodic failure-epoch churn).
const std::vector<HotpathUnit>& hotpath_units();

}  // namespace atrcp::benchio
