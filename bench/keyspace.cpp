// bench_keyspace — E21: the sharded multi-object layer under YCSB-style
// skewed workloads.
//
// Runs every keyspace unit TWICE — once serial and once through the run
// driver at `--jobs N` — verifies the merged payloads match byte for byte
// (every cell is a pure function of its index, so the digests are
// jobs-invariant by construction and this run PROVES it), and writes the
// keyspace section of BENCH_ATRCP.json into the working directory:
//
//   "keyspace"      per-unit {name, shards, committed, payload_bytes, digest}
//   "load_bounds"   one object per shard of the 64-site ARBITRARY keyspace —
//                   measured max read/write site-load share under Zipfian
//                   theta=0.99 beside the analytic optima 1/d = 1/4 and
//                   1/|K_phy| = 1/8 (Facts 3.2.3/3.2.4)
//   "tail_latency"  per-mix merged QuantileSketch tails: commit and
//                   non-commit p50/p90/p99/p999, quorum-size distributions
//                   and per-site turnaround p99s (the "tail" unit)
//   "critical_path" the flight-recorder critical-path breakdown of the
//                   "cpath" unit: lock/network/service/local decomposition,
//                   per-site straggler counts, slowest paths
//   "timing"        the single host-dependent line
//
// Everything except "timing" is byte-identical across runs, hosts and
// --jobs counts. Flags:
//   --jobs N          driver width for the parallel leg (default: hardware)
//   --smoke           tiny op counts (CI wiring check, not a perf run)
//   --lint <file>     validate <file> with obs::json_lint and exit
//   --trace-out FILE  additionally run a small flight-recorded keyspace and
//                     dump a multi-shard Chrome trace (one process per
//                     shard, critical-path overlay tracks) to FILE
//
// Exit 0 iff every unit's parallel payload matched its serial reference,
// no inline check reported a violation, and the document lints.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "driver/digest.hpp"
#include "driver/pool.hpp"
#include "keyspace/keyspace.hpp"
#include "keyspace_units.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/json_lint.hpp"

using namespace atrcp;
using namespace atrcp::benchio;

namespace {

struct UnitRun {
  std::string payload;
  std::uint64_t committed = 0;
  double wall_ms = 0;
};

UnitRun run_unit(const KeyspaceUnit& unit, std::uint64_t ops,
                 const RunDriver& driver) {
  const auto start = std::chrono::steady_clock::now();
  UnitRun out;
  const std::vector<ShardResult> shards = driver.map<ShardResult>(
      unit.shards,
      [&unit, ops](std::size_t shard) { return unit.run(shard, ops); });
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const ShardResult& shard : shards) {
    out.payload += shard.payload;
    out.committed += shard.committed;
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

int lint_file(const char* path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::printf("FAIL cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  if (!json_valid(text.str(), &error)) {
    std::printf("FAIL %s does not lint: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("OK %s lints (%zu bytes)\n", path, text.str().size());
  return 0;
}

/// Runs a small flight-recorded 4-shard keyspace and writes one Chrome
/// trace document: each shard its own process, each shard's critical-path
/// report overlaid as a "critical path" track. Returns true on success.
bool write_trace_out(const std::string& path) {
  KeyspaceOptions options;
  options.shards = 4;
  options.shard_protocol = [] {
    return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
  };
  options.clients = 4;
  options.seed = 0x7ACE;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.event_bus_capacity = 1 << 15;
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];
  run.records = 64;
  run.ops_per_client = 60;
  run.workload_seed = 0x7A;
  run_keyspace_workload(keyspace, run);

  std::vector<CriticalPathReport> reports;
  reports.reserve(keyspace.cluster_count());
  std::vector<ShardTrace> shards;
  for (std::size_t s = 0; s < keyspace.cluster_count(); ++s) {
    reports.push_back(analyze_critical_paths(*keyspace.cluster(s).events()));
  }
  for (std::size_t s = 0; s < keyspace.cluster_count(); ++s) {
    ShardTrace shard;
    shard.bus = keyspace.cluster(s).events();
    shard.name = "shard " + std::to_string(s);
    shard.site_names = keyspace.cluster(s).site_names();
    shard.critical = &reports[s];
    shards.push_back(std::move(shard));
  }
  ChromeTraceStats stats{};
  const std::string trace = chrome_trace_shards_json(shards, &stats);
  std::string error;
  if (!json_valid(trace, &error)) {
    std::printf("FAIL --trace-out document does not lint: %s\n",
                error.c_str());
    return false;
  }
  std::ofstream file(path, std::ios::binary);
  file << trace;
  file.close();
  if (!file) {
    std::printf("FAIL could not write %s\n", path.c_str());
    return false;
  }
  std::printf("# wrote %s (%zu bytes, %zu tracks, %zu flows, %zu critical "
              "slices; open in chrome://tracing or Perfetto)\n",
              path.c_str(), trace.size(), stats.tracks, stats.flow_begins,
              stats.critical_slices);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const RunDriver parallel(parse_jobs_flag(argc, argv));
  const RunDriver serial(1);
  bool smoke = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--lint") == 0 && i + 1 < argc) {
      return lint_file(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::printf("usage: bench_keyspace [--smoke] [--jobs N] [--lint <file>] "
                  "[--trace-out <file>]\n");
      return 2;
    }
  }

  bool all_ok = true;
  std::string units_json;
  std::string timing_json;
  std::string load_bounds;
  std::string tail_latency;
  std::string critical_path;
  std::printf("# bench_keyspace%s: %zu units, jobs=%zu\n",
              smoke ? " (smoke)" : "", keyspace_units().size(),
              parallel.jobs());
  for (const KeyspaceUnit& unit : keyspace_units()) {
    const std::uint64_t ops =
        smoke ? (unit.full_ops / 10 > 8 ? unit.full_ops / 10 : 8)
              : unit.full_ops;
    const UnitRun reference = run_unit(unit, ops, serial);
    const UnitRun sharded = run_unit(unit, ops, parallel);
    const bool match = reference.payload == sharded.payload &&
                       reference.committed == sharded.committed;
    const bool clean = reference.payload.find("check=FAIL") == std::string::npos;
    all_ok = all_ok && match && clean;
    if (unit.name == kLoadBoundsUnit) load_bounds = reference.payload;
    if (unit.name == kTailUnit) {
      // Cells emit "{...},\n" each; trim the trailing ",\n" so the
      // concatenation embeds as a JSON array body.
      tail_latency = reference.payload;
      if (tail_latency.size() >= 2) {
        tail_latency.resize(tail_latency.size() - 2);
      }
    }
    if (unit.name == kCriticalPathUnit) critical_path = reference.payload;
    const std::string digest = hex64(fnv1a64(reference.payload));
    const double txns_per_sec =
        sharded.wall_ms > 0
            ? static_cast<double>(sharded.committed) / (sharded.wall_ms / 1e3)
            : 0;
    std::printf("%-10s %s shards=%zu ops/client=%llu committed=%llu "
                "digest=%s serial=%sms jobs=%sms\n",
                unit.name.c_str(), match && clean ? "OK  " : "FAIL",
                unit.shards, static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(reference.committed),
                digest.c_str(), fixed(reference.wall_ms, 1).c_str(),
                fixed(sharded.wall_ms, 1).c_str());
    if (!match) {
      std::printf("  parallel payload diverged from the serial reference — "
                  "a cell is not a pure function of its index\n");
    }
    if (!clean) {
      std::printf("  a cell's inline key-aware check reported a violation\n");
    }
    if (!units_json.empty()) units_json += ",\n";
    units_json += "{\"name\":\"" + unit.name +
                  "\",\"shards\":" + std::to_string(unit.shards) +
                  ",\"committed\":" + std::to_string(reference.committed) +
                  ",\"payload_bytes\":" +
                  std::to_string(reference.payload.size()) + ",\"digest\":\"" +
                  digest + "\"}";
    if (!timing_json.empty()) timing_json += ",";
    timing_json += "{\"name\":\"" + unit.name +
                   "\",\"serial_ms\":" + fixed(reference.wall_ms, 1) +
                   ",\"parallel_ms\":" + fixed(sharded.wall_ms, 1) +
                   ",\"txns_per_sec\":" + fixed(txns_per_sec, 1) + "}";
  }

  if (!trace_out.empty()) {
    all_ok = write_trace_out(trace_out) && all_ok;
  }

  std::ostringstream doc;
  doc << "{\n\"bench\":\"atrcp\",\n\"schema\":1,\n\"keyspace\":[\n"
      << units_json << "\n],\n\"load_bounds\":[\n" << load_bounds
      << "\n],\n\"tail_latency\":[\n" << tail_latency
      << "\n],\n\"critical_path\":\n"
      << (critical_path.empty() ? "{}" : critical_path)
      << ",\n\"timing\":{\"smoke\":" << (smoke ? "true" : "false")
      << ",\"jobs\":" << parallel.jobs() << ",\"units\":[" << timing_json
      << "]}\n}\n";
  std::string error;
  if (!json_valid(doc.str(), &error)) {
    all_ok = false;
    std::printf("FAIL keyspace document does not lint: %s\n", error.c_str());
  }
  const char* path = "BENCH_ATRCP.json";
  std::ofstream file(path, std::ios::binary);
  file << doc.str();
  file.close();
  std::printf("# wrote %s (%zu bytes)\n", file ? path : "(write failed)",
              doc.str().size());
  std::printf(all_ok ? "# bench_keyspace: PASS\n" : "# bench_keyspace: FAIL\n");
  return all_ok ? 0 : 1;
}
