// E11 — full-stack workload comparison: runs the same transactional
// workload (mixed read fractions) through the complete simulator — replica
// servers, 2PC, locks, real messages — for each paper configuration, and
// reports commit rate, latency, total messages and the busiest replica's
// message share (the empirical system load under execution, not analysis).
//
// Every (read fraction, configuration) cell is an independent job — its own
// Cluster, its own fixed seed (see bench/suite.cpp) — so the grid fans out
// across `--jobs N` workers (default: hardware concurrency) and merges in
// cell order: output is byte-identical at every worker count, and identical
// to the pre-driver serial code at --jobs 1.
#include <iostream>
#include <vector>

#include "driver/pool.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace atrcp;
using namespace atrcp::benchio;

namespace {

/// Result slot of one sharded job: grid cells fill `row`, the two
/// deterministic JSON blocks fill `block`.
struct JobResult {
  std::vector<std::string> row;
  std::string block;
};

}  // namespace

int main(int argc, char** argv) {
  const RunDriver driver(parse_jobs_flag(argc, argv));
  std::cout << "=== E11: executed workloads across configurations (n~63) "
               "===\n\n";

  // 12 grid cells + the metrics block + the load block, all independent;
  // merged below in job-index order.
  const std::size_t cells = workload_cell_count();
  const std::vector<JobResult> results = driver.map<JobResult>(
      cells + 2, [cells](std::size_t job) {
        JobResult out;
        if (job < cells) {
          out.row = workload_cell_row(job);
        } else if (job == cells) {
          out.block = table1_metrics_block().payload;
        } else {
          out.block = load64_block().payload;
        }
        return out;
      });

  const std::size_t fractions = cells / 4;
  for (std::size_t f = 0; f < fractions; ++f) {
    Table table({"config", "commit rate", "latency us (mean/p95/p99)",
                 "messages", "busiest replica share"});
    for (std::size_t c = 0; c < 4; ++c) {
      table.add_row(std::vector<std::string>(results[f * 4 + c].row));
    }
    std::cout << "read fraction " << workload_cell_fraction(f * 4) << ":\n";
    table.print_text(std::cout);
    std::cout << '\n';
  }
  std::cout << "metrics " << results[cells].block << "\n\n";
  std::cout << "load " << results[cells + 1].block << "\n\n";

  std::cout
      << "Observed shape: MOSTLY-READ is cheapest under read-heavy traffic\n"
      << "and collapses under write-heavy traffic, as the paper predicts.\n"
      << "Under write-heavy traffic ARBITRARY wins — note this is a\n"
      << "finding the analytic figures miss: an executed write also pays a\n"
      << "version pre-read through a READ quorum, which costs (n-1)/2 on\n"
      << "MOSTLY-WRITE. The paper's write-cost accounting (write quorum\n"
      << "only) under-counts exactly this, so the balanced ARBITRARY shape\n"
      << "is even stronger in practice than Figure 2 suggests.\n";
  return 0;
}
