// E11 — full-stack workload comparison: runs the same transactional
// workload (mixed read fractions) through the complete simulator — replica
// servers, 2PC, locks, real messages — for each paper configuration, and
// reports commit rate, latency, total messages and the busiest replica's
// message share (the empirical system load under execution, not analysis).
#include <iostream>
#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "metrics_block.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"
#include "util/table.hpp"

using namespace atrcp;

namespace {

std::unique_ptr<ArbitraryProtocol> make_config(const std::string& name,
                                               std::size_t n) {
  if (name == "MOSTLY-READ") return make_mostly_read(n);
  if (name == "MOSTLY-WRITE") return make_mostly_write(n | 1);
  if (name == "ARBITRARY") return make_arbitrary(n);
  return std::make_unique<ArbitraryProtocol>(
      unmodified_tree(5), "UNMODIFIED");  // 63 replicas
}

}  // namespace

int main() {
  std::cout << "=== E11: executed workloads across configurations (n~63) "
               "===\n\n";
  const std::size_t n = 63;

  for (double read_fraction : {0.95, 0.5, 0.05}) {
    Table table({"config", "commit rate", "latency us (mean/p95/p99)",
                 "messages", "busiest replica share"});
    for (const std::string name :
         {"MOSTLY-READ", "ARBITRARY", "UNMODIFIED", "MOSTLY-WRITE"}) {
      ClusterOptions options;
      options.clients = 4;
      options.link = LinkParams{.base_latency = 50, .jitter = 10};
      Cluster cluster(make_config(name, n), options);
      WorkloadOptions workload;
      workload.transactions_per_client = 150;
      workload.read_fraction = read_fraction;
      workload.num_keys = 32;
      const WorkloadStats stats = run_workload(cluster, workload);
      table.add_row({name, cell(stats.commit_rate(), 3),
                     cell(stats.mean_latency_us, 0) + " / " +
                         cell(stats.latency.percentile(0.95), 0) + " / " +
                         cell(stats.latency.percentile(0.99), 0),
                     cell(stats.messages_sent),
                     cell(stats.max_replica_share(), 4)});
    }
    std::cout << "read fraction " << read_fraction << ":\n";
    table.print_text(std::cout);
    std::cout << '\n';
  }
  // Metrics block: the Table 1 tree (1-3-5) executed at p = 0, validating
  // Facts 3.2.1/3.2.2 empirically — the measured mean read-quorum size must
  // equal |K_phy| = 2 exactly (every assembled read quorum picks one node
  // per physical level; version pre-reads included) and the measured mean
  // write-quorum size approaches n / |K_phy| = 4 (uniform pick over the
  // level sizes {3, 5}). Fixed seed: the line is byte-identical across runs.
  {
    ClusterOptions options;
    options.clients = 2;
    options.link = LinkParams{.base_latency = 50, .jitter = 10};
    Cluster cluster(std::make_unique<ArbitraryProtocol>(
                        ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                    options);
    WorkloadOptions workload;
    workload.transactions_per_client = 400;
    workload.read_fraction = 0.5;
    workload.num_keys = 16;
    run_workload(cluster, workload);
    std::cout << "metrics ";
    benchio::emit_metrics_block(std::cout, "table1-p0", cluster);
    std::cout << "\n\n";
  }

  // Load block: a healthy 64-site ARBITRARY run, validating Facts
  // 3.2.3/3.2.4 empirically — the busiest site's measured read share must
  // stay within the analytic optimum 1/d = 1/4 (one pick per physical
  // level, the bottom level has d = 4 nodes) and the busiest write share
  // near 1/|K_phy| = 1/8 = 1/sqrt(64). Fixed seed: byte-identical output.
  {
    std::unique_ptr<ArbitraryProtocol> protocol = make_arbitrary(64);
    SiteLoadOptions load_options;
    load_options.protocol = protocol->name();
    load_options.universe = protocol->universe_size();
    load_options.analytic_read_load = protocol->read_load();
    load_options.analytic_write_load = protocol->write_load();
    const ArbitraryTree& tree = protocol->tree();
    for (const std::uint32_t level : tree.physical_levels()) {
      load_options.levels.push_back(tree.replicas_at_level(level));
    }
    ClusterOptions options;
    options.clients = 4;
    options.link = LinkParams{.base_latency = 50, .jitter = 10};
    Cluster cluster(std::move(protocol), options);
    WorkloadOptions workload;
    workload.transactions_per_client = 300;
    workload.read_fraction = 0.5;
    workload.num_keys = 32;
    run_workload(cluster, workload);
    std::cout << "load "
              << collect_site_load(cluster.metrics(), load_options).to_json()
              << "\n\n";
  }

  std::cout
      << "Observed shape: MOSTLY-READ is cheapest under read-heavy traffic\n"
      << "and collapses under write-heavy traffic, as the paper predicts.\n"
      << "Under write-heavy traffic ARBITRARY wins — note this is a\n"
      << "finding the analytic figures miss: an executed write also pays a\n"
      << "version pre-read through a READ quorum, which costs (n-1)/2 on\n"
      << "MOSTLY-WRITE. The paper's write-cost accounting (write quorum\n"
      << "only) under-counts exactly this, so the balanced ARBITRARY shape\n"
      << "is even stronger in practice than Figure 2 suggests.\n";
  return 0;
}
