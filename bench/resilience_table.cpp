// E14 — worst-case fault tolerance across the protocol zoo: for every
// protocol with an enumerable quorum system at comparable scale, the exact
// minimum-transversal resilience (largest f such that ANY f crashes leave a
// live quorum) next to the probabilistic availability at p = 0.9.
//
// This quantifies the paper's §1 comparison: ROWA's writes die with one
// crash; the rooted tree protocols' writes die with the root; majority
// tolerates floor((n-1)/2); the arbitrary protocol's reads tolerate d-1
// and its writes |K_phy|-1 — the two knobs the tree shape sets directly.
#include <iostream>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/hqc.hpp"
#include "protocols/majority.hpp"
#include "protocols/maekawa.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "quorum/resilience.hpp"
#include "util/table.hpp"

using namespace atrcp;

namespace {

struct Row {
  std::string name;
  std::unique_ptr<ReplicaControlProtocol> protocol;
};

}  // namespace

int main() {
  std::cout << "=== E14: exact worst-case resilience (n ~ 9-16) ===\n\n";
  std::vector<Row> rows;
  rows.push_back({"ARBITRARY 1-3-5",
                  std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"))});
  rows.push_back({"ARBITRARY 1-4-4-4",
                  std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-4-4-4"))});
  rows.push_back({"MOSTLY-READ (9)", make_mostly_read(9)});
  rows.push_back({"MOSTLY-WRITE (9)", make_mostly_write(9)});
  rows.push_back({"UNMODIFIED h=3", make_unmodified(3)});
  rows.push_back({"ROWA (9)", std::make_unique<Rowa>(9)});
  rows.push_back({"MAJORITY (9)", std::make_unique<MajorityQuorum>(9)});
  rows.push_back({"BINARY h=3", std::make_unique<TreeQuorum>(3)});
  rows.push_back({"HQC depth 2", std::make_unique<Hqc>(2)});
  rows.push_back({"MAEKAWA 3x3", std::make_unique<Maekawa>(3)});

  Table table({"protocol", "n", "read resilience", "write resilience",
               "RD_av(0.9)", "WR_av(0.9)"});
  for (const Row& row : rows) {
    const std::size_t n = row.protocol->universe_size();
    const SetSystem reads(n, row.protocol->enumerate_read_quorums(200000));
    const SetSystem writes(n, row.protocol->enumerate_write_quorums(200000));
    table.add_row({row.name, cell(n), cell(resilience(reads)),
                   cell(resilience(writes)),
                   cell(row.protocol->read_availability(0.9), 3),
                   cell(row.protocol->write_availability(0.9), 3)});
  }
  table.print_text(std::cout);
  std::cout
      << "\nReading: ROWA/MOSTLY-READ write resilience 0 (one crash halts\n"
      << "writes); the arbitrary shapes trade read resilience (d-1)\n"
      << "against write resilience (|K_phy|-1) by construction; MAJORITY\n"
      << "is the floor((n-1)/2) gold standard; BINARY's worst case is a\n"
      << "dead root-to-leaf path — h+1 targeted crashes (resilience h),\n"
      << "well below majority despite its high average availability.\n";
  return 0;
}
