// E7 — ablation: the paper's central design knob is |K_phy|, the number of
// physical levels. For a fixed n, sweep the number of (balanced) levels
// from 1 (MOSTLY-READ) to n/2 (MOSTLY-WRITE-like) and chart every metric —
// the full trade-off curve behind §3.3's prose.
#include <iostream>

#include "core/analysis.hpp"
#include "core/config.hpp"
#include "util/table.hpp"

using namespace atrcp;

int main() {
  std::cout << "=== E7: ablation — physical level count for fixed n ===\n\n";
  const std::size_t n = 120;
  const double p = 0.85;

  Table table({"levels", "shape d..e", "RD_cost", "WR_cost", "L_RD", "L_WR",
               "RD_av", "WR_av", "E[L_RD]", "E[L_WR]"});
  for (std::size_t levels : {1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u, 12u, 15u, 20u,
                             30u, 40u, 60u}) {
    const ArbitraryAnalysis a(balanced_tree(n, levels));
    table.add_row({cell(levels),
                   cell(a.d()) + ".." + cell(a.e()),
                   cell(a.read_cost(), 0),
                   cell(a.write_cost_avg(), 1),
                   cell(a.read_load(), 4),
                   cell(a.write_load(), 4),
                   cell(a.read_availability(p), 4),
                   cell(a.write_availability(p), 4),
                   cell(a.expected_read_load(p), 4),
                   cell(a.expected_write_load(p), 4)});
  }
  table.print_text(std::cout);

  std::cout
      << "\nReading the curve (paper §3.3): adding levels monotonically\n"
      << "lowers write cost/load and raises write availability, while\n"
      << "raising read cost/load and lowering read availability — the tree\n"
      << "shape IS the read/write trade-off dial. sqrt(n) levels (about 11\n"
      << "here) balances both at cost ~sqrt(n) and write load ~1/sqrt(n).\n";
  return 0;
}
