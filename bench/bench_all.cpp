// bench_all — the one-command paper reproduction and the repo's perf
// baseline emitter.
//
// Runs the full table/figure suite as sharded units through the parallel
// run driver, each unit TWICE — once serial (--jobs 1 semantics) and once
// at the requested `--jobs N` — and emits BENCH_ATRCP.json into the
// working directory: per-unit wall-clock (serial and parallel), speedup,
// committed transactions per second, and an FNV-1a digest of the unit's
// deterministic payload. Because every shard is a pure function of its
// index, the digests — and every line of the file except the single
// "timing" line — are byte-identical at every --jobs count and across
// runs; the timing line is the only host-dependent content. A PR that
// changes a digest changed simulation behaviour; a PR that only moves the
// timing line changed performance. That split is the whole point: the
// file seeds the perf trajectory ROADMAP.md asks for.
//
// Exit code 0 iff every unit's parallel payload matched its serial payload
// byte for byte and the emitted document passes the obs JSON linter.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "bigtree_units.hpp"
#include "check/broken.hpp"
#include "check/explorer.hpp"
#include "driver/digest.hpp"
#include "driver/pool.hpp"
#include "hotpath_units.hpp"
#include "keyspace_units.hpp"
#include "reconfig_units.hpp"
#include "obs/event_bus.hpp"
#include "obs/json_lint.hpp"
#include "obs/metrics.hpp"
#include "suite.hpp"

using namespace atrcp;
using namespace atrcp::benchio;

namespace {

/// One shardable bench unit of the suite.
struct Unit {
  std::string name;
  std::size_t shards = 0;
  std::function<ShardResult(std::size_t)> run;
  /// Modelled operations across all shards, when the unit counts them
  /// (the hotpath units); 0 means "not an ops-metered unit" and the
  /// timing line reports ns_per_op 0.
  std::uint64_t ops = 0;
};

/// The explorer sweep sharded one (protocol, seed-block) per shard. Smaller
/// than the full check_explore 200-seed gate (which stays the correctness
/// sweep; this is the perf baseline) but still the heaviest unit by far.
constexpr std::size_t kExploreSeedsPerProtocol = 48;
constexpr std::size_t kExploreSeedBlock = 8;

Unit explore_unit() {
  const auto zoo = std::make_shared<std::vector<ZooEntry>>(protocol_zoo());
  const std::size_t blocks = kExploreSeedsPerProtocol / kExploreSeedBlock;
  return Unit{
      "explore_zoo", zoo->size() * blocks, [zoo, blocks](std::size_t shard) {
        const ZooEntry& entry = (*zoo)[shard / blocks];
        const std::uint64_t first_seed = (shard % blocks) * kExploreSeedBlock;
        const ScheduleExplorer explorer;
        // One flight-recorder ring per block, reset between seeds — the
        // shard-local arena reuse that stops a multi-MiB allocation per
        // seed (recordings, hence digests, are unchanged).
        const std::unique_ptr<EventBus> scratch = explorer.make_scratch_bus();
        ShardResult out;
        for (std::uint64_t seed = first_seed;
             seed < first_seed + kExploreSeedBlock; ++seed) {
          const SeedReport report =
              explorer.run_seed(entry.factory, seed, scratch.get());
          out.payload += entry.label + " " + report.line() + "\n";
          if (!report.ok) out.payload += report.detail;
          out.committed += report.committed;
        }
        return out;
      }};
}

std::vector<Unit> suite() {
  std::vector<Unit> units;
  units.push_back(explore_unit());
  // Fine-grained units are batched into blocks of consecutive indices
  // (run_index_block) so a job amortizes its scheduling and world-setup
  // cost; the concatenated payload — and therefore every digest — is
  // byte-identical to the per-index decomposition.
  const auto workload_cell = [](std::size_t index) {
    ShardResult out;
    std::uint64_t committed = 0;
    for (const std::string& column : workload_cell_row(index, &committed)) {
      out.payload += column + "|";
    }
    out.payload += "\n";
    out.committed = committed;
    return out;
  };
  constexpr std::size_t kGridBlock = 3;    // 12 cells -> 4 jobs
  constexpr std::size_t kFigureBlock = 5;  // 10 points -> 2 jobs
  constexpr std::size_t kPsweepBlock = 5;  // 20 points -> 4 jobs
  units.push_back({"workload_grid",
                   block_count(workload_cell_count(), kGridBlock),
                   [workload_cell](std::size_t shard) {
                     return run_index_block(workload_cell_count(), kGridBlock,
                                            shard, workload_cell);
                   }});
  units.push_back({"table1_metrics", 1,
                   [](std::size_t) { return table1_metrics_block(); }});
  units.push_back({"site_load_64", 1, [](std::size_t) { return load64_block(); }});
  units.push_back({"sim_throughput", 8,
                   [](std::size_t shard) { return throughput_shard(shard); }});
  units.push_back({"figures_2_3_4",
                   block_count(figure_point_count(), kFigureBlock),
                   [](std::size_t shard) {
                     return run_index_block(figure_point_count(), kFigureBlock,
                                            shard, figure_point);
                   }});
  units.push_back({"psweep", block_count(psweep_point_count(), kPsweepBlock),
                   [](std::size_t shard) {
                     return run_index_block(psweep_point_count(), kPsweepBlock,
                                            shard, psweep_point);
                   }});
  // Quarter-length runs of the hotpath microbenchmark units: bench_all
  // tracks their digests and rough ns/op alongside the paper units, while
  // bench_hotpath stays the precise standalone meter.
  for (const HotpathUnit& hp : hotpath_units()) {
    const std::uint64_t iters = hp.iters / 4;
    units.push_back({"hotpath_" + hp.name, hp.shards,
                     [run = hp.run, iters](std::size_t shard) {
                       return run(shard, iters);
                     },
                     hp.shards * iters});
  }
  // Half-depth runs of the sharded-keyspace units (E21): digests tracked
  // here alongside everything else, while bench_keyspace stays the full
  // standalone meter (and the emitter of the load_bounds section).
  for (const KeyspaceUnit& ks : keyspace_units()) {
    const std::uint64_t ops = ks.full_ops / 2;
    units.push_back({"keyspace_" + ks.name, ks.shards,
                     [run = ks.run, ops](std::size_t shard) {
                       return run(shard, ops);
                     }});
  }
  // Half-depth runs of the big-tree scaling units (E24), capped at
  // n = 16384 here — bench_bigtree stays the full standalone sweep (with
  // the n = 65536 shard and the peak-RSS budget).
  for (const BigtreeUnit& bt : bigtree_units()) {
    const std::uint64_t iters = bt.iters / 2;
    units.push_back({bt.name, kBigtreeBenchAllShards,
                     [run = bt.run, iters](std::size_t shard) {
                       return run(shard, iters);
                     }});
  }
  // Half-depth runs of the online-reconfiguration units (E23): epoch
  // transition latency/abort buckets and crash recovery, digests tracked
  // here while bench_reconfig stays the full standalone meter.
  for (const ReconfigUnit& rc : reconfig_units()) {
    const std::uint64_t txns = rc.full_txns / 2;
    units.push_back({"reconfig_" + rc.name, rc.shards,
                     [run = rc.run, txns](std::size_t shard) {
                       return run(shard, txns);
                     }});
  }
  return units;
}

/// Merged result of running one unit under one driver.
struct UnitRun {
  std::string payload;
  std::uint64_t committed = 0;
  double wall_ms = 0;
  RunStats stats;  ///< scheduler perf counters (workers/claims/steals)
};

UnitRun run_unit(const Unit& unit, const RunDriver& driver) {
  const auto start = std::chrono::steady_clock::now();
  UnitRun out;
  const std::vector<ShardResult> shards =
      driver.map<ShardResult>(unit.shards, unit.run, &out.stats);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const ShardResult& shard : shards) {
    out.payload += shard.payload;
    out.committed += shard.committed;
  }
  return out;
}

std::string ms(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

std::string ratio(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const RunDriver parallel(parse_jobs_flag(argc, argv));
  const RunDriver serial(1);

  bool all_ok = true;
  std::string units_json;    // deterministic section, one line per unit
  std::string timing_json;   // the single host-dependent line
  double total_serial_ms = 0;
  double total_parallel_ms = 0;
  std::uint64_t total_committed = 0;

  const std::vector<Unit> units = suite();
  std::printf("# bench_all: %zu units, jobs=%zu (serial reference first)\n",
              units.size(), parallel.jobs());
  for (const Unit& unit : units) {
    const UnitRun reference = run_unit(unit, serial);
    const UnitRun sharded = run_unit(unit, parallel);
    const bool match = reference.payload == sharded.payload &&
                       reference.committed == sharded.committed;
    all_ok = all_ok && match;
    const double speedup =
        sharded.wall_ms > 0 ? reference.wall_ms / sharded.wall_ms : 0;
    const double txns_per_sec =
        sharded.wall_ms > 0
            ? static_cast<double>(sharded.committed) / (sharded.wall_ms / 1e3)
            : 0;
    total_serial_ms += reference.wall_ms;
    total_parallel_ms += sharded.wall_ms;
    total_committed += sharded.committed;

    if (!units_json.empty()) units_json += ",\n";
    units_json += "{\"name\":\"" + unit.name +
                  "\",\"shards\":" + std::to_string(unit.shards) +
                  ",\"committed\":" + std::to_string(reference.committed) +
                  ",\"payload_bytes\":" +
                  std::to_string(reference.payload.size()) + ",\"digest\":\"" +
                  hex64(fnv1a64(reference.payload)) + "\"}";
    const double ns_per_op =
        unit.ops > 0 && sharded.wall_ms > 0
            ? sharded.wall_ms * 1e6 / static_cast<double>(unit.ops)
            : 0;
    if (!timing_json.empty()) timing_json += ",";
    timing_json += "{\"name\":\"" + unit.name +
                   "\",\"serial_ms\":" + ms(reference.wall_ms) +
                   ",\"parallel_ms\":" + ms(sharded.wall_ms) +
                   ",\"speedup\":" + ratio(speedup) +
                   ",\"txns_per_sec\":" + ms(txns_per_sec) +
                   ",\"ns_per_op\":" + ms(ns_per_op) +
                   ",\"workers\":" + std::to_string(sharded.stats.workers) +
                   ",\"claims\":" +
                   std::to_string(sharded.stats.chunk_claims) +
                   ",\"steals\":" + std::to_string(sharded.stats.steals) +
                   "}";
    std::printf("%-16s %s shards=%zu committed=%llu digest=%s "
                "serial=%sms parallel=%sms speedup=%sx\n",
                unit.name.c_str(), match ? "OK  " : "FAIL", unit.shards,
                static_cast<unsigned long long>(reference.committed),
                hex64(fnv1a64(reference.payload)).c_str(),
                ms(reference.wall_ms).c_str(), ms(sharded.wall_ms).c_str(),
                ratio(speedup).c_str());
    if (!match) {
      std::printf("  parallel payload diverged from the serial reference — "
                  "a shard is not a pure function of its index\n");
    }
  }

  const double overall_speedup =
      total_parallel_ms > 0 ? total_serial_ms / total_parallel_ms : 0;
  std::ostringstream doc;
  doc << "{\n\"bench\":\"atrcp\",\n\"schema\":1,\n\"units\":[\n"
      << units_json << "\n],\n\"timing\":{\"jobs\":" << parallel.jobs()
      << ",\"units\":[" << timing_json << "],\"total\":{\"serial_ms\":"
      << ms(total_serial_ms) << ",\"parallel_ms\":" << ms(total_parallel_ms)
      << ",\"speedup\":" << ratio(overall_speedup)
      << ",\"committed\":" << total_committed << ",\"committed_per_sec\":"
      << ms(total_parallel_ms > 0
                ? static_cast<double>(total_committed) /
                      (total_parallel_ms / 1e3)
                : 0)
      << "}}\n}\n";

  std::string error;
  if (!json_valid(doc.str(), &error)) {
    all_ok = false;
    std::printf("FAIL BENCH_ATRCP.json does not lint: %s\n", error.c_str());
  }

  const char* path = "BENCH_ATRCP.json";
  std::ofstream file(path, std::ios::binary);
  file << doc.str();
  file.close();
  std::printf("# wrote %s (%zu bytes): total committed=%llu "
              "serial=%sms parallel=%sms speedup=%sx jobs=%zu\n",
              file ? path : "(write failed)", doc.str().size(),
              static_cast<unsigned long long>(total_committed),
              ms(total_serial_ms).c_str(), ms(total_parallel_ms).c_str(),
              ratio(overall_speedup).c_str(), parallel.jobs());
  std::printf(all_ok ? "# bench_all: PASS\n" : "# bench_all: FAIL\n");
  return all_ok ? 0 : 1;
}
