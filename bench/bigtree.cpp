// bench_bigtree — E24: the large-n substrate sweep. Algorithm 1 trees at
// n ∈ {1024, 4096, 16384, 65536} sites, quorum assembly and full-cluster
// workloads, runnable only because the network is tiled/sparse and every
// per-txn hot path is O(active quorum).
//
// Every unit runs TWICE — serial reference, then at --jobs N through the
// work-stealing driver — and the payloads must match byte for byte. The
// emitted BENCH_ATRCP.json carries the deterministic "bigtree" section
// (per-unit digests, tree geometry pinned in the payloads) plus the single
// host-dependent "timing" line (wall clock, txns/sec, assembly ns/op, peak
// RSS).
//
// The process's peak RSS is asserted against a hard budget at exit: the
// full sweep builds and runs an n = 65536 cluster inside < 1 GiB, which the
// former dense n x n link tables (~137 GiB at that n) made impossible. The
// smoke run covers n = 1024 plus a construct-only probe at n = 16384 under
// 512 MiB — a dense-table regression either blows that budget or hangs in
// the O(n^3) table rebuild long before finishing.
//
// Flags:
//   --smoke        n = 1024 shards only + the n = 16384 construct probe
//   --jobs N       worker count for the sharded pass (default: hardware)
//   --lint <file>  validate <file> with obs::json_lint and exit
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bigtree_units.hpp"
#include "driver/digest.hpp"
#include "driver/pool.hpp"
#include "obs/json_lint.hpp"

using namespace atrcp;
using namespace atrcp::benchio;

namespace {

/// Peak resident set of this process in KiB: getrusage ru_maxrss first
/// (KiB on Linux, bytes on macOS), /proc VmHWM as a fallback for kernels
/// that report ru_maxrss as 0. Returns 0 when neither works, which skips
/// the budget assertion.
std::size_t peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::size_t>(usage.ru_maxrss) / 1024;
#else
    return static_cast<std::size_t>(usage.ru_maxrss);
#endif
  }
#endif
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::strtoull(
          line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

struct UnitRun {
  std::string payload;
  std::uint64_t committed = 0;
  double wall_ms = 0;
};

UnitRun run_unit(const BigtreeUnit& unit, std::size_t shards,
                 std::uint64_t iters, const RunDriver& driver) {
  const auto start = std::chrono::steady_clock::now();
  UnitRun out;
  const std::vector<ShardResult> results = driver.map<ShardResult>(
      shards,
      [&unit, iters](std::size_t shard) { return unit.run(shard, iters); });
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const ShardResult& shard : results) {
    out.payload += shard.payload;
    out.committed += shard.committed;
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

int lint_file(const char* path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::printf("FAIL cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  if (!json_valid(text.str(), &error)) {
    std::printf("FAIL %s does not lint: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("OK %s lints (%zu bytes)\n", path, text.str().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--lint") == 0 && i + 1 < argc) {
      return lint_file(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // consumed by parse_jobs_flag below
    } else {
      std::printf(
          "usage: bench_bigtree [--smoke] [--jobs N] [--lint <file>]\n");
      return 2;
    }
  }
  const RunDriver parallel(parse_jobs_flag(argc, argv));
  const RunDriver serial(1);

  bool all_ok = true;
  std::string units_json;
  std::string timing_json;
  const std::size_t shards = smoke ? 1 : kBigtreeShards;
  std::printf("# bench_bigtree%s: %zu units, n up to %zu, jobs=%zu\n",
              smoke ? " (smoke)" : "", bigtree_units().size(),
              bigtree_sites(shards - 1), parallel.jobs());

  for (const BigtreeUnit& unit : bigtree_units()) {
    const std::uint64_t iters = smoke ? unit.iters / 8 : unit.iters;
    const UnitRun reference = run_unit(unit, shards, iters, serial);
    const UnitRun sharded = run_unit(unit, shards, iters, parallel);
    const bool match = reference.payload == sharded.payload &&
                       reference.committed == sharded.committed;
    all_ok = all_ok && match;
    const double best_ms = sharded.wall_ms < reference.wall_ms
                               ? sharded.wall_ms
                               : reference.wall_ms;
    const double ns_per_op =
        reference.committed > 0
            ? best_ms * 1e6 / static_cast<double>(reference.committed)
            : 0;
    const double per_sec =
        best_ms > 0
            ? static_cast<double>(reference.committed) / (best_ms / 1e3)
            : 0;
    const std::string digest = hex64(fnv1a64(reference.payload));
    std::printf("%-18s %s shards=%zu committed=%llu ns/op=%s per_sec=%s "
                "digest=%s\n",
                unit.name.c_str(), match ? "OK  " : "FAIL", shards,
                static_cast<unsigned long long>(reference.committed),
                fixed(ns_per_op, 1).c_str(), fixed(per_sec, 0).c_str(),
                digest.c_str());
    if (!match) {
      std::printf("  parallel payload diverged from the serial reference — "
                  "a shard is not a pure function of its index\n");
    }
    if (!units_json.empty()) units_json += ",\n";
    units_json += "{\"name\":\"" + unit.name +
                  "\",\"shards\":" + std::to_string(shards) +
                  ",\"committed\":" + std::to_string(reference.committed) +
                  ",\"digest\":\"" + digest + "\"}";
    if (!timing_json.empty()) timing_json += ",";
    timing_json += "{\"name\":\"" + unit.name +
                   "\",\"serial_ms\":" + fixed(reference.wall_ms, 1) +
                   ",\"parallel_ms\":" + fixed(sharded.wall_ms, 1) +
                   ",\"ns_per_op\":" + fixed(ns_per_op, 1) +
                   ",\"per_sec\":" + fixed(per_sec, 0) + "}";
  }

  // Construct-only probe: smoke proves n = 16384 registration is O(1) per
  // site; the full sweep already built n = 65536 inside bigtree_txn.
  if (smoke) {
    const ShardResult probe = bigtree_construct_probe(16384);
    const bool ok = probe.committed == 1;
    all_ok = all_ok && ok;
    std::printf("construct_16384    %s %s", ok ? "OK  " : "FAIL",
                probe.payload.c_str());
    if (!units_json.empty()) units_json += ",\n";
    units_json += "{\"name\":\"construct_16384\",\"shards\":1,\"committed\":" +
                  std::to_string(probe.committed) + ",\"digest\":\"" +
                  hex64(fnv1a64(probe.payload)) + "\"}";
  }

  // Peak-RSS budget: the gate that keeps the substrate sparse. Budgets are
  // far above the sparse footprint and far below any dense n x n revival.
  const std::size_t rss_kib = peak_rss_kib();
  const std::size_t budget_kib =
      (smoke ? std::size_t{512} : std::size_t{1024}) * 1024;
  if (rss_kib > 0) {
    const bool within = rss_kib < budget_kib;
    all_ok = all_ok && within;
    std::printf("peak_rss           %s %zu MiB (budget %zu MiB)\n",
                within ? "OK  " : "FAIL", rss_kib / 1024, budget_kib / 1024);
    if (!within) {
      std::printf("  peak RSS exceeded the sparse-substrate budget — did a "
                  "dense per-pair table come back?\n");
    }
  }

  std::ostringstream doc;
  doc << "{\n\"bench\":\"atrcp\",\n\"schema\":1,\n\"bigtree\":[\n"
      << units_json << "\n],\n\"timing\":{\"smoke\":"
      << (smoke ? "true" : "false") << ",\"jobs\":" << parallel.jobs()
      << ",\"peak_rss_mib\":" << rss_kib / 1024 << ",\"units\":["
      << timing_json << "]}\n}\n";
  std::string error;
  if (!json_valid(doc.str(), &error)) {
    all_ok = false;
    std::printf("FAIL bigtree document does not lint: %s\n", error.c_str());
  }
  const char* path = "BENCH_ATRCP.json";
  std::ofstream file(path, std::ios::binary);
  file << doc.str();
  file.close();
  std::printf("# wrote %s (%zu bytes)\n", file ? path : "(write failed)",
              doc.str().size());
  std::printf(all_ok ? "# bench_bigtree: PASS\n" : "# bench_bigtree: FAIL\n");
  return all_ok ? 0 : 1;
}
