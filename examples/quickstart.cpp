// Quickstart: build the paper's example tree (§3.4, "1-3-5"), inspect its
// analytic properties, then run real reads and writes through a simulated
// cluster of 8 replica servers — including a failure that the protocol
// rides out.
//
//   $ ./quickstart
#include <iostream>

#include "core/analysis.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "txn/cluster.hpp"

using namespace atrcp;

int main() {
  // 1. Describe the replica topology with the paper's compact notation:
  //    a logical root over two physical levels of 3 and 5 replicas.
  ArbitraryTree tree = ArbitraryTree::from_spec("1-3-5");
  std::cout << "tree " << tree.to_spec_string() << ": n = "
            << tree.replica_count() << ", height = " << tree.height()
            << ", physical levels = " << tree.physical_levels().size()
            << "\n";

  // 2. Ask the analytic model what this shape costs before deploying it.
  const ArbitraryAnalysis analysis(tree);
  std::cout << "read: cost " << analysis.read_cost() << ", load "
            << analysis.read_load() << ", availability(p=0.7) "
            << analysis.read_availability(0.7) << "\n"
            << "write: avg cost " << analysis.write_cost_avg() << ", load "
            << analysis.write_load() << ", availability(p=0.7) "
            << analysis.write_availability(0.7) << "\n\n";

  // 3. Spin up a full simulated cluster: 8 replica servers, a network with
  //    latency, a failure injector and one client coordinator.
  Cluster cluster(std::make_unique<ArbitraryProtocol>(std::move(tree)));

  // 4. Write and read through quorums (2PC under the hood for writes).
  if (cluster.write_sync(0, /*key=*/42, "hello, quorums") !=
      TxnOutcome::kCommitted) {
    std::cerr << "unexpected: write failed on a healthy cluster\n";
    return 1;
  }
  const auto value = cluster.read_sync(0, 42);
  std::cout << "read key 42 -> '" << value->value << "' at timestamp "
            << value->timestamp.to_string() << "\n";

  // 5. Crash two replicas of the second level. Reads dodge the dead
  //    members; writes retarget the still-complete first level. (Crashing
  //    one replica in EVERY level would block writes — a write needs one
  //    fully-alive level — while reads would still survive.)
  cluster.injector().crash_now(5);
  cluster.injector().crash_now(6);
  std::cout << "crashed replicas 5 and 6...\n";
  if (cluster.write_sync(0, 42, "still writable") != TxnOutcome::kCommitted) {
    std::cerr << "unexpected: write failed with a complete level alive\n";
    return 1;
  }
  std::cout << "read after failures -> '"
            << cluster.read_sync(0, 42)->value << "'\n";

  // 6. Transactions: multiple operations, atomic commit.
  const TxnResult txn = cluster.run_sync(
      0, {TxnOp::read(42), TxnOp::write(7, "atomic"), TxnOp::read(7)});
  std::cout << "transaction outcome: "
            << (txn.outcome == TxnOutcome::kCommitted ? "committed"
                                                      : "not committed")
            << " (" << txn.reads.size() << " op results)\n";
  return 0;
}
