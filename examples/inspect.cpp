// inspect — a small CLI around the public API: parse a tree spec, print
// its structure (ASCII + optional Graphviz), its complete analytic
// scorecard across a p-range, and the quorum systems (for small trees).
//
//   $ ./inspect 1-3-5
//   $ ./inspect 1-4-4-4 --dot > tree.dot && dot -Tpng tree.dot -o tree.png
//   $ ./inspect --algorithm1 100
//   $ ./inspect --spectrum 60 0.8        # n=60, 80% reads
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/analysis.hpp"
#include "core/config.hpp"
#include "core/dot.hpp"
#include "core/quorums.hpp"
#include "quorum/resilience.hpp"
#include "util/table.hpp"

using namespace atrcp;

namespace {

void usage() {
  std::cout << "usage: inspect <spec>            e.g. inspect 1-3-5\n"
            << "       inspect <spec> --dot      print graphviz source\n"
            << "       inspect --algorithm1 <n>  Algorithm 1 tree for n\n"
            << "       inspect --spectrum <n> <read_fraction>\n";
}

void report(const ArbitraryTree& tree, bool dot) {
  if (dot) {
    write_dot(tree, std::cout);
    return;
  }
  std::cout << "tree " << tree.to_spec_string() << "  (n = "
            << tree.replica_count() << ", height = " << tree.height()
            << ", assumption 3.1: "
            << (tree.satisfies_assumption_3_1() ? "yes" : "NO") << ")\n\n"
            << to_ascii(tree) << '\n';

  const ArbitraryAnalysis a(tree);
  Table scorecard({"metric", "read", "write"});
  scorecard.add_row({"cost", cell(a.read_cost(), 1),
                     cell(a.write_cost_avg(), 1) + "  (min " +
                         cell(a.write_cost_min(), 0) + ", max " +
                         cell(a.write_cost_max(), 0) + ")"});
  scorecard.add_row({"optimal load", cell(a.read_load(), 4),
                     cell(a.write_load(), 4)});
  scorecard.add_row(
      {"quorum count", cell(a.read_quorum_count(), 0),
       cell(a.write_quorum_count())});
  scorecard.print_text(std::cout);

  Table availability({"p", "RD_av", "WR_av", "E[L_RD]", "E[L_WR]", "stable"});
  for (double p : {0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    availability.add_row({cell(p, 2), cell(a.read_availability(p), 4),
                          cell(a.write_availability(p), 4),
                          cell(a.expected_read_load(p), 4),
                          cell(a.expected_write_load(p), 4),
                          a.is_stable(p) ? "yes" : "no"});
  }
  std::cout << '\n';
  availability.print_text(std::cout);

  if (a.read_quorum_count() <= 32) {
    const ArbitraryProtocol protocol{ArbitraryTree(tree)};
    std::cout << "\nread quorums:\n";
    for (const Quorum& q : protocol.enumerate_read_quorums(32)) {
      std::cout << "  " << q.to_string() << '\n';
    }
    std::cout << "write quorums:\n";
    for (const Quorum& q : protocol.enumerate_write_quorums(32)) {
      std::cout << "  " << q.to_string() << '\n';
    }
    const SetSystem reads(tree.replica_count(),
                          protocol.enumerate_read_quorums(32));
    const SetSystem writes(tree.replica_count(),
                           protocol.enumerate_write_quorums(32));
    std::cout << "worst-case resilience: reads " << resilience(reads)
              << " crashes, writes " << resilience(writes) << " crashes\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      usage();
      return 2;
    }
    const std::string first = argv[1];
    if (first == "--algorithm1" && argc >= 3) {
      report(algorithm1_tree(std::strtoul(argv[2], nullptr, 10)), false);
    } else if (first == "--spectrum" && argc >= 4) {
      const std::size_t n = std::strtoul(argv[2], nullptr, 10);
      const double fr = std::strtod(argv[3], nullptr);
      report(configure_spectrum(
                 n, {.read_fraction = fr, .availability_p = 0.9}),
             false);
    } else if (first.rfind("--", 0) == 0) {
      usage();
      return 2;
    } else {
      const bool dot = argc >= 3 && std::string(argv[2]) == "--dot";
      report(ArbitraryTree::from_spec(first), dot);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
