// Fault tolerance walkthrough: crashes, a network partition, and random
// churn thrown at an arbitrary-protocol cluster, narrated step by step —
// shows which operations survive which failures and why, and contrasts
// with ROWA's behaviour under the same events.
//
//   $ ./fault_tolerance
#include <iostream>
#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/rowa.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

using namespace atrcp;

namespace {

const char* outcome_name(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted: return "committed";
    case TxnOutcome::kAborted: return "aborted";
    case TxnOutcome::kBlocked: return "blocked";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "=== fault tolerance: arbitrary protocol on 1-4-6 ===\n\n";
  // Two physical levels: 4 replicas (ids 0-3) and 6 replicas (ids 4-9).
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
      ArbitraryTree::from_spec("1-4-6")));

  std::cout << "healthy: write -> "
            << outcome_name(cluster.write_sync(0, 1, "v1")) << ", read -> '"
            << cluster.read_sync(0, 1)->value << "'\n";

  std::cout << "\n-- crash 3 of 4 level-1 replicas (0,1,2) --\n";
  for (ReplicaId r : {0u, 1u, 2u}) cluster.injector().crash_now(r);
  std::cout << "read still works through survivor 3: "
            << (cluster.read_sync(0, 1) ? "yes" : "no") << "\n";
  std::cout << "write retargets the intact level 2: "
            << outcome_name(cluster.write_sync(0, 1, "v2")) << "\n";

  std::cout << "\n-- crash survivor 3 as well: level 1 is gone --\n";
  cluster.injector().crash_now(3);
  std::cout << "read now aborts (needs one member of EVERY level): "
            << (cluster.read_sync(0, 1) ? "unexpected!" : "aborted")
            << "\n";
  std::cout << "ROWA-comparison: ROWA reads would still work here, but no\n"
            << "ROWA write could have survived even ONE crash; this shape\n"
            << "kept writes available through four.\n";

  std::cout << "\n-- recover everyone --\n";
  for (ReplicaId r = 0; r < 4; ++r) cluster.injector().recover_now(r);
  std::cout << "read -> '" << cluster.read_sync(0, 1)->value
            << "' (the write that landed during the outage)\n";

  std::cout << "\n-- partition: replicas 4,5,6 cut off from the client --\n";
  for (SiteId s : {4u, 5u, 6u}) cluster.network().set_partition(s, 1);
  // The failure detector doesn't know (partitions are silent): the
  // coordinator suspects silent members after a timeout and re-assembles.
  const auto read = cluster.read_sync(0, 1);
  std::cout << "read during partition (suspicion + retry): "
            << (read ? "committed" : "aborted") << "\n";
  cluster.network().heal_partitions();
  std::cout << "partition healed; write -> "
            << outcome_name(cluster.write_sync(0, 1, "v3")) << "\n";

  std::cout << "\n-- heartbeat detection instead of oracle knowledge --\n";
  {
    ClusterOptions options;
    options.use_heartbeat_detector = true;
    options.detector.interval = 1'000;
    options.detector.suspect_after = 3;
    Cluster detected(std::make_unique<ArbitraryProtocol>(
                         ArbitraryTree::from_spec("1-4-6")),
                     options);
    detected.write_sync(0, 1, "probe");
    detected.network().set_up(2, false);  // silent crash
    detected.scheduler().run_until(detected.scheduler().now() + 10'000);
    std::cout << "detector suspected the silent crash of replica 2: "
              << (detected.detector()->view().is_failed(2) ? "yes" : "no")
              << "; reads keep working: "
              << (detected.read_sync(0, 1) ? "yes" : "no") << "\n";
  }

  std::cout << "\n-- sustained random churn (each replica ~85% available) "
               "--\n";
  cluster.injector().start_random_failures(/*mean_uptime=*/85'000,
                                           /*mean_downtime=*/15'000,
                                           /*horizon=*/3'000'000);
  WorkloadOptions workload;
  workload.transactions_per_client = 300;
  workload.read_fraction = 0.7;
  const WorkloadStats stats = run_workload(cluster, workload);
  std::cout << "under churn: " << stats.committed << " committed, "
            << stats.aborted << " aborted, " << stats.blocked
            << " blocked (commit rate " << stats.commit_rate() << ")\n";
  std::cout << "analytic prediction at p=0.85: read availability "
            << cluster.protocol().read_availability(0.85)
            << ", write availability "
            << cluster.protocol().write_availability(0.85) << "\n";
  return 0;
}
