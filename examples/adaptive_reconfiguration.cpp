// Adaptive reconfiguration: the paper's headline operational claim is that
// shifting between configurations only means re-shaping the tree — no new
// protocol. This example runs a workload whose read/write mix drifts over
// three phases (read-heavy -> balanced -> write-heavy). At each phase
// boundary the spectrum configurator proposes a new tree for the observed
// mix, the data is carried over, and the phase runs on the new shape.
// Compare the per-phase message bills with and without reconfiguration.
//
//   $ ./adaptive_reconfiguration
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

using namespace atrcp;

namespace {

struct Phase {
  const char* label;
  double read_fraction;
};

constexpr Phase kPhases[] = {
    {"read-heavy (95% reads)", 0.95},
    {"balanced   (50% reads)", 0.50},
    {"write-heavy (5% reads)", 0.05},
};

/// Spectrum options tuned for message bills as well as load: the executed
/// cost term is what makes reconfiguration pay off on the wire.
SpectrumOptions options_for(double read_fraction) {
  return {.read_fraction = read_fraction,
          .availability_p = 0.95,
          .cost_weight = 1.0};
}

WorkloadStats run_phase(Cluster& cluster, double read_fraction) {
  WorkloadOptions options;
  options.transactions_per_client = 200;
  options.read_fraction = read_fraction;
  options.num_keys = 24;
  return run_workload(cluster, options);
}

}  // namespace

int main() {
  const std::size_t n = 60;
  std::cout << "=== adaptive reconfiguration over " << n << " replicas ===\n\n";

  // Static baseline: one fixed shape (Algorithm-1-style) for all phases.
  std::uint64_t static_messages = 0;
  {
    Cluster cluster(make_arbitrary(n));
    for (const Phase& phase : kPhases) {
      static_messages += run_phase(cluster, phase.read_fraction).messages_sent;
    }
  }

  // Adaptive: re-shape the tree IN PLACE at each phase boundary —
  // Cluster::reconfigure runs the state transfer and swaps the protocol on
  // the same replicas; no data is lost and no new protocol is written.
  std::uint64_t adaptive_messages = 0;
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
      configure_spectrum(n, options_for(kPhases[0].read_fraction))));
  for (std::size_t i = 0; i < std::size(kPhases); ++i) {
    if (i > 0) {
      cluster.reconfigure(std::make_unique<ArbitraryProtocol>(
          configure_spectrum(n, options_for(kPhases[i].read_fraction))));
    }
    const auto& shape =
        static_cast<const ArbitraryProtocol&>(cluster.protocol());
    const WorkloadStats stats = run_phase(cluster, kPhases[i].read_fraction);
    adaptive_messages += stats.messages_sent;
    std::cout << kPhases[i].label << ":\n"
              << "  tree shape: " << shape.tree().to_spec_string() << " ("
              << shape.tree().physical_levels().size()
              << " physical levels)\n"
              << "  messages: " << stats.messages_sent << ", commit rate "
              << stats.commit_rate() << ", busiest replica share "
              << std::setprecision(3) << stats.max_replica_share() << "\n";
  }

  std::cout << "\ntotal messages, fixed Algorithm-1 shape: "
            << static_messages
            << "\ntotal messages, spectrum-adapted shapes: "
            << adaptive_messages << "\nsavings: "
            << std::setprecision(3)
            << 100.0 * (1.0 - static_cast<double>(adaptive_messages) /
                                  static_cast<double>(static_messages))
            << "% — same protocol, different trees.\n";
  return 0;
}
