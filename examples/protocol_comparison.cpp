// Protocol comparison: every replica control protocol in the library — the
// paper's configurations and the classic baselines — side by side on one
// synthetic workload over the simulator, plus their analytic scorecards.
// A compact, runnable version of the paper's §4 evaluation.
//
//   $ ./protocol_comparison
#include <iostream>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/grid.hpp"
#include "protocols/hqc.hpp"
#include "protocols/maekawa.hpp"
#include "protocols/majority.hpp"
#include "protocols/rooted_tree.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "protocols/weighted_voting.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"
#include "util/table.hpp"

using namespace atrcp;

namespace {

std::vector<std::unique_ptr<ReplicaControlProtocol>> lineup() {
  std::vector<std::unique_ptr<ReplicaControlProtocol>> protocols;
  protocols.push_back(make_arbitrary(63));
  protocols.push_back(make_mostly_read(63));
  protocols.push_back(make_mostly_write(63));
  protocols.push_back(make_unmodified(5));                    // 63 replicas
  protocols.push_back(std::make_unique<TreeQuorum>(5));       // 63 replicas
  protocols.push_back(std::make_unique<Hqc>(4));              // 81 replicas
  protocols.push_back(std::make_unique<Rowa>(63));
  protocols.push_back(std::make_unique<MajorityQuorum>(63));
  protocols.push_back(std::make_unique<Grid>(8, 8));          // 64 replicas
  protocols.push_back(std::make_unique<Maekawa>(8));          // 64 replicas
  protocols.push_back(
      std::make_unique<RootedTreeQuorum>(3, 3, 2, 2));        // 40 replicas
  protocols.push_back(std::make_unique<WeightedVoting>(
      WeightedVoting::majority(63)));
  return protocols;
}

}  // namespace

int main() {
  std::cout << "=== protocol comparison (n ~ 63) ===\n\n";
  const double p = 0.85;

  {
    Table table({"protocol", "n", "RD cost", "WR cost", "RD load", "WR load",
                 "RD avail", "WR avail"});
    for (const auto& protocol : lineup()) {
      table.add_row({protocol->name(), cell(protocol->universe_size()),
                     cell(protocol->read_cost(), 1),
                     cell(protocol->write_cost(), 1),
                     cell(protocol->read_load(), 3),
                     cell(protocol->write_load(), 3),
                     cell(protocol->read_availability(p), 3),
                     cell(protocol->write_availability(p), 3)});
    }
    std::cout << "analytic scorecard at p = " << p << ":\n";
    table.print_text(std::cout);
  }

  {
    Table table({"protocol", "commit rate", "mean latency (us)", "messages",
                 "busiest share"});
    for (auto& protocol : lineup()) {
      ClusterOptions options;
      options.clients = 2;
      Cluster cluster(std::move(protocol), options);
      WorkloadOptions workload;
      workload.transactions_per_client = 100;
      workload.read_fraction = 0.7;
      workload.num_keys = 16;
      const WorkloadStats stats = run_workload(cluster, workload);
      table.add_row({cluster.protocol().name(), cell(stats.commit_rate(), 3),
                     cell(stats.mean_latency_us, 0),
                     cell(stats.messages_sent),
                     cell(stats.max_replica_share(), 3)});
    }
    std::cout << "\nexecuted workload (70% reads, healthy cluster):\n";
    table.print_text(std::cout);
  }

  std::cout << "\nTake-away: ROWA/MOSTLY-READ minimize read traffic but pay\n"
            << "n per write; MAJORITY balances availability at ~n/2 per op;\n"
            << "tree shapes cut costs to log/sqrt scale, and the arbitrary\n"
            << "protocol picks its point on that spectrum by re-shaping the\n"
            << "tree alone.\n";
  return 0;
}
