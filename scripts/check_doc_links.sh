#!/usr/bin/env bash
# Checks that every relative markdown link resolves: the target file exists,
# a #L<n> fragment points inside the file (docs/ARCHITECTURE.md anchors its
# module tour to defining header lines), and a #heading fragment matches a
# real heading of the target. External (http/mailto) links are skipped.
#
# Usage: scripts/check_doc_links.sh [file.md ...]   (default: all tracked .md)
set -u

cd "$(dirname "$0")/.."

# Default set: the repo's own documentation. PAPER.md / PAPERS.md /
# SNIPPETS.md are verbatim paper-retrieval artifacts whose figure
# references never shipped with the text, so they are not checked.
files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md docs/*.md)
fi

errors=0
checked=0

# GitHub-style heading slug: lowercase, punctuation stripped, spaces -> dashes.
slugify() {
  printf '%s' "$1" | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

for md in "${files[@]}"; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Extract link targets: ](target) — one per line, ignoring images is
  # unnecessary (image paths must resolve too).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) # in-page anchor
        fragment=${target#\#}
        path=$md
        ;;
      *'#'*)
        fragment=${target#*#}
        path=$dir/${target%%#*}
        ;;
      *)
        fragment=""
        path=$dir/$target
        ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$path" ]; then
      echo "BROKEN  $md -> $target (no such file: $path)"
      errors=$((errors + 1))
      continue
    fi
    if [ -n "$fragment" ]; then
      case "$fragment" in
        L[0-9]*)
          line=${fragment#L}
          total=$(wc -l < "$path")
          if [ "$line" -gt "$total" ]; then
            echo "BROKEN  $md -> $target (#L$line but $path has $total lines)"
            errors=$((errors + 1))
          fi
          ;;
        *)
          found=0
          while IFS= read -r heading; do
            if [ "$(slugify "$heading")" = "$fragment" ]; then
              found=1
              break
            fi
          done < <(sed -n 's/^#\{1,6\} \{1,\}//p' "$path")
          if [ "$found" -eq 0 ]; then
            echo "BROKEN  $md -> $target (no heading slug '#$fragment' in $path)"
            errors=$((errors + 1))
          fi
          ;;
      esac
    fi
  done < <(grep -o ']([^)]*)' "$md" | sed -e 's/^](//' -e 's/)$//')
done

echo "check_doc_links: $checked links checked, $errors broken"
[ "$errors" -eq 0 ]
